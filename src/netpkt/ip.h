// IPv4 addressing and header parse/serialize.
//
// Packets on the TUN link are raw IPv4 datagrams (a TUN device is a virtual
// point-to-point IP link, paper §2.2), so this is the outermost layer the
// engine sees.
#ifndef MOPEYE_NETPKT_IP_H_
#define MOPEYE_NETPKT_IP_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/status.h"

namespace moppkt {

// An IPv4 address held in host byte order.
class IpAddr {
 public:
  constexpr IpAddr() : value_(0) {}
  constexpr explicit IpAddr(uint32_t host_order) : value_(host_order) {}
  constexpr IpAddr(uint8_t a, uint8_t b, uint8_t c, uint8_t d)
      : value_((static_cast<uint32_t>(a) << 24) | (static_cast<uint32_t>(b) << 16) |
               (static_cast<uint32_t>(c) << 8) | d) {}

  // Parses dotted-quad "10.0.0.1". Returns error on malformed input.
  static moputil::Result<IpAddr> Parse(const std::string& text);

  constexpr uint32_t value() const { return value_; }
  std::string ToString() const;

  constexpr bool operator==(const IpAddr& o) const { return value_ == o.value_; }
  constexpr bool operator!=(const IpAddr& o) const { return value_ != o.value_; }
  constexpr bool operator<(const IpAddr& o) const { return value_ < o.value_; }

 private:
  uint32_t value_;
};

// An (address, port) endpoint.
struct SocketAddr {
  IpAddr ip;
  uint16_t port = 0;

  bool operator==(const SocketAddr& o) const { return ip == o.ip && port == o.port; }
  bool operator!=(const SocketAddr& o) const { return !(*this == o); }
  bool operator<(const SocketAddr& o) const {
    if (ip != o.ip) {
      return ip < o.ip;
    }
    return port < o.port;
  }
  std::string ToString() const;
};

enum class IpProto : uint8_t {
  kIcmp = 1,
  kTcp = 6,
  kUdp = 17,
};

// Parsed IPv4 header (no options support beyond skipping them; the relay
// never emits options).
struct Ipv4Header {
  uint8_t ihl = 5;               // header length in 32-bit words
  uint8_t dscp_ecn = 0;
  uint16_t total_length = 0;     // header + payload, bytes
  uint16_t identification = 0;
  uint16_t flags_fragment = 0x4000;  // DF set, no fragmentation
  uint8_t ttl = 64;
  uint8_t protocol = 0;
  uint16_t checksum = 0;
  IpAddr src;
  IpAddr dst;

  size_t header_bytes() const { return static_cast<size_t>(ihl) * 4; }
  size_t payload_bytes() const { return total_length - header_bytes(); }
};

// Parses and validates an IPv4 header from `data` (which may be longer than
// the datagram). Verifies version, length bounds, and header checksum.
moputil::Result<Ipv4Header> ParseIpv4(std::span<const uint8_t> data);

// Writes the 20-byte option-less header (checksum computed) for a datagram
// of `total_length` bytes into out[0..20). Bytes past the header are not
// touched, so the L4 payload can already be sitting at out+20 — this is the
// zero-copy building block.
void WriteIpv4Header(const Ipv4Header& h, uint16_t total_length, std::span<uint8_t> out);

// Serializes header + payload into `out` (capacity >= 20 + payload.size()),
// returning the datagram size. No allocation.
size_t BuildIpv4Into(const Ipv4Header& h, std::span<const uint8_t> payload,
                     std::span<uint8_t> out);

// Serializes `h` (with checksum computed) followed by `payload` into a full
// datagram. Sets total_length from the payload size.
std::vector<uint8_t> BuildIpv4(Ipv4Header h, std::span<const uint8_t> payload);

}  // namespace moppkt

#endif  // MOPEYE_NETPKT_IP_H_
