// App-side stack tests: the client TCP implementation, the DNS client, and
// the traffic sessions (driven against the full relay, which is the only
// TCP peer in the system — exactly how the real app meets MopEye).
#include <gtest/gtest.h>

#include "apps/dns_client.h"
#include "apps/sessions.h"
#include "apps/tcp_client.h"
#include "tests/test_world.h"

namespace {

using moptest::TestWorld;
using moptest::WorldOptions;
using moputil::Millis;

TEST(AppTcp, HandshakeNegotiatesMss) {
  TestWorld w;
  ASSERT_TRUE(w.StartEngine().ok());
  auto addr = w.AddServer(moppkt::IpAddr(93, 70, 0, 1), 80, Millis(10));
  auto conn = mopapps::AppTcpConnection::Create(&w.stack(), 10300);
  bool ok = false;
  conn->Connect(addr, [&](moputil::Status st) { ok = st.ok(); });
  w.RunMs(1000);
  ASSERT_TRUE(ok);
  EXPECT_EQ(conn->state(), mopapps::AppTcpState::kEstablished);
  EXPECT_EQ(conn->peer_mss(), 1460);  // §3.4: MopEye advertises MSS 1460
  EXPECT_EQ(conn->syn_retransmits(), 0);
  EXPECT_GT(conn->connect_latency(), 0);
}

TEST(AppTcp, ConnTableRowExistsWhileConnected) {
  TestWorld w;
  ASSERT_TRUE(w.StartEngine().ok());
  auto addr = w.AddServer(moppkt::IpAddr(93, 70, 0, 2), 80, Millis(10));
  auto conn = mopapps::AppTcpConnection::Create(&w.stack(), 10301);
  conn->Connect(addr, [](moputil::Status) {});
  // The row appears at connect() time with SYN_SENT.
  EXPECT_EQ(w.device().conn_table().LookupUid(moppkt::IpProto::kTcp, conn->local().port,
                                              conn->remote()),
            10301);
  w.RunMs(1000);
  conn->Close();
  w.RunMs(1000);
  EXPECT_EQ(conn->state(), mopapps::AppTcpState::kClosed);
  EXPECT_EQ(w.device().conn_table().LookupUid(moppkt::IpProto::kTcp, conn->local().port,
                                              conn->remote()),
            -1);
}

TEST(AppTcp, SynRetransmitsWhenServerSlow) {
  TestWorld w;
  ASSERT_TRUE(w.StartEngine().ok());
  // Server accept delayed 1.6s: the app's kernel retransmits its SYN once;
  // the relay answers the duplicate without creating a second client.
  auto ip = moppkt::IpAddr(93, 70, 0, 3);
  w.paths().SetPath(ip, std::make_shared<moputil::FixedDelay>(Millis(5)));
  w.farm().AddTcpServer({ip, 80},
                        [] { return std::make_unique<mopnet::SizeEncodedBehavior>(); },
                        std::make_shared<moputil::FixedDelay>(moputil::Seconds(1.6)));
  auto conn = mopapps::AppTcpConnection::Create(&w.stack(), 10302);
  bool ok = false;
  conn->Connect({ip, 80}, [&](moputil::Status st) { ok = st.ok(); });
  w.RunMs(5000);
  EXPECT_TRUE(ok);
  EXPECT_GE(conn->syn_retransmits(), 1);
  EXPECT_EQ(w.engine().counters().syn_duplicates, conn->syn_retransmits() * 1ull);
  EXPECT_EQ(w.engine().active_clients(), 1u);  // duplicate SYN didn't fork a client
}

TEST(AppTcp, AbortSendsRstThroughRelay) {
  TestWorld w;
  ASSERT_TRUE(w.StartEngine().ok());
  auto addr = w.AddServer(moppkt::IpAddr(93, 70, 0, 4), 80, Millis(10));
  auto conn = mopapps::AppTcpConnection::Create(&w.stack(), 10303);
  conn->Connect(addr, [&](moputil::Status st) {
    ASSERT_TRUE(st.ok());
    conn->Abort();
  });
  w.RunMs(1000);
  EXPECT_EQ(conn->state(), mopapps::AppTcpState::kClosed);
  EXPECT_GT(w.engine().counters().rsts, 0u);
  EXPECT_EQ(w.engine().active_clients(), 0u);
}

TEST(AppTcp, WindowLimitsInFlightData) {
  // With a slow relay ACK path the app may not exceed the advertised window.
  TestWorld w;
  ASSERT_TRUE(w.StartEngine().ok());
  auto addr = w.AddServer(moppkt::IpAddr(93, 70, 0, 5), 80, Millis(50),
                          [] { return std::make_unique<mopnet::SinkBehavior>(); });
  auto conn = mopapps::AppTcpConnection::Create(&w.stack(), 10304);
  conn->Connect(addr, [&](moputil::Status st) {
    ASSERT_TRUE(st.ok());
    conn->SendBytes(500000);  // far more than one window
  });
  w.RunMs(80);  // before first ACK returns, in-flight <= min(window, cwnd)
  EXPECT_LE(conn->bytes_sent(), 65535u);
  w.RunMs(8000);
  EXPECT_EQ(conn->bytes_sent(), 500000u);  // eventually everything flows
}

TEST(DnsClient, ResolvesThroughTunnel) {
  TestWorld w;
  ASSERT_TRUE(w.StartEngine().ok());
  w.farm().resolution().Add("api.service.test", moppkt::IpAddr(93, 71, 0, 1));
  mopapps::TunDnsClient dns(&w.stack(), 10310);
  moppkt::IpAddr got;
  dns.Resolve("api.service.test", [&](moputil::Result<mopapps::DnsResult> r) {
    ASSERT_TRUE(r.ok());
    got = r.value().address;
    EXPECT_EQ(r.value().retries, 0);
    EXPECT_GT(r.value().latency, 0);
  });
  w.RunMs(2000);
  EXPECT_EQ(got, moppkt::IpAddr(93, 71, 0, 1));
}

TEST(DnsClient, RetriesOnLossThenSucceeds) {
  TestWorld w;
  ASSERT_TRUE(w.StartEngine().ok());
  // 60% loss toward the resolver: retries happen, eventually succeeds.
  w.paths().SetPath(moppkt::IpAddr(8, 8, 8, 8),
                    std::make_shared<moputil::FixedDelay>(Millis(10)), 0.6);
  w.farm().resolution().Add("flaky.example", moppkt::IpAddr(93, 71, 0, 2));
  mopapps::TunDnsClient dns(&w.stack(), 10311);
  dns.set_timeout(moputil::Millis(300));
  dns.set_max_retries(8);
  bool done = false;
  bool ok = false;
  dns.Resolve("flaky.example", [&](moputil::Result<mopapps::DnsResult> r) {
    done = true;
    ok = r.ok();
  });
  w.RunMs(10000);
  EXPECT_TRUE(done);
  EXPECT_TRUE(ok);
}

TEST(DnsClient, RejectsInvalidName) {
  TestWorld w;
  ASSERT_TRUE(w.StartEngine().ok());
  mopapps::TunDnsClient dns(&w.stack(), 10312);
  bool failed = false;
  dns.Resolve("bad..name", [&](moputil::Result<mopapps::DnsResult> r) { failed = !r.ok(); });
  w.RunMs(10);
  EXPECT_TRUE(failed);
}

TEST(Sessions, ChatRoundTripsMessages) {
  TestWorld w;
  ASSERT_TRUE(w.StartEngine().ok());
  auto* app = w.MakeApp(10320, "com.whatsapp", "Whatsapp");
  mopapps::ChatSession::Config cfg;
  cfg.messages = 10;
  cfg.mean_gap = Millis(200);
  mopapps::ChatSession session(app, &w.farm(), cfg, moputil::Rng(3));
  bool done = false;
  session.Start([&] { done = true; });
  w.RunMs(60000);
  ASSERT_TRUE(done);
  EXPECT_EQ(session.metrics().message_rtt_ms.count(), 10u);
  EXPECT_EQ(session.metrics().failures, 0);
  EXPECT_GT(session.metrics().message_rtt_ms.Median(), 0.0);
}

TEST(Sessions, VideoStreamsAllChunks) {
  TestWorld w;
  ASSERT_TRUE(w.StartEngine().ok());
  auto* app = w.MakeApp(10321, "com.google.android.youtube", "YouTube");
  mopapps::VideoSession::Config cfg;
  cfg.chunks = 4;
  cfg.chunk_bytes = 256 * 1024;
  cfg.chunk_interval = Millis(500);
  mopapps::VideoSession session(app, &w.farm(), cfg, moputil::Rng(4));
  bool done = false;
  session.Start([&] { done = true; });
  w.RunMs(30000);
  ASSERT_TRUE(done);
  EXPECT_GE(session.metrics().bytes_down, 4u * 256 * 1024);
}

TEST(Sessions, SpeedtestDirectModeApproachesLinkRate) {
  // Baseline sanity for Table 3: without any VPN, the speedtest should land
  // near the 25 Mbps access rate in both directions.
  WorldOptions opts;
  TestWorld w(opts);
  auto* app = w.MakeApp(10322, "org.zwanoo.android.speedtest", "Speedtest",
                        mopapps::App::Mode::kDirect);
  mopapps::SpeedtestSession::Config cfg;
  cfg.download_bytes = 4 * 1024 * 1024;
  cfg.upload_bytes = 4 * 1024 * 1024;
  mopapps::SpeedtestSession session(app, &w.farm(), cfg, moputil::Rng(5));
  mopapps::SpeedtestSession::Result result;
  bool done = false;
  session.Start([&](mopapps::SpeedtestSession::Result r) {
    result = r;
    done = true;
  });
  w.loop().RunUntil(moputil::Seconds(120));
  ASSERT_TRUE(done);
  EXPECT_GT(result.download_mbps, 20.0);
  EXPECT_LE(result.download_mbps, 26.0);
  EXPECT_GT(result.upload_mbps, 20.0);
  EXPECT_GT(result.ping_ms.count(), 0u);
}

TEST(Sessions, BrowsingDirectVsTunnelSameShape) {
  // The same session code runs over both transports; metrics have the same
  // shape so overhead experiments can diff them.
  for (auto mode : {mopapps::App::Mode::kDirect, mopapps::App::Mode::kTunnel}) {
    TestWorld w;
    if (mode == mopapps::App::Mode::kTunnel) {
      ASSERT_TRUE(w.StartEngine().ok());
    }
    auto* app = w.MakeApp(10323, "com.android.chrome", "Chrome", mode);
    mopapps::BrowsingSession::Config cfg;
    cfg.pages = 2;
    mopapps::BrowsingSession session(app, &w.farm(), cfg, moputil::Rng(6));
    bool done = false;
    session.Start([&] { done = true; });
    w.RunMs(60000);
    ASSERT_TRUE(done) << "mode " << static_cast<int>(mode);
    EXPECT_EQ(session.metrics().failures, 0);
    EXPECT_EQ(session.metrics().page_load_ms.count(), 2u);
  }
}

}  // namespace
