// MetricsExportService: the engine-side scrape endpoint.
//
// An EngineService that registers a moptel::MetricsExportBehavior for the
// engine's telemetry registry on the shared ServerFarm when the engine
// starts, and removes it when the engine stops — the "metrics exporter" the
// service registry was designed for. Requires Config::telemetry; with
// telemetry off the engine has no registry and OnEngineStart is a no-op.
#ifndef MOPEYE_CORE_TELEMETRY_SERVICE_H_
#define MOPEYE_CORE_TELEMETRY_SERVICE_H_

#include "core/service.h"
#include "net/server.h"
#include "netpkt/ip.h"

namespace mopeye {

class MopEyeEngine;

class MetricsExportService final : public EngineService {
 public:
  // `farm` must outlive the service. The engine is attached separately
  // (AttachEngine) because services are built before the engine starts.
  MetricsExportService(mopnet::ServerFarm* farm, moppkt::SocketAddr addr);

  std::string_view service_name() const override { return "metrics-export"; }
  void OnEngineStart() override;
  void OnEngineStop() override;

  // Composition roots call this before RegisterService; the service reads
  // the engine's registry lazily at start, after the engine has built it.
  void AttachEngine(MopEyeEngine* engine) { engine_ = engine; }
  const moppkt::SocketAddr& addr() const { return addr_; }
  bool serving() const { return serving_; }

 private:
  mopnet::ServerFarm* farm_;
  moppkt::SocketAddr addr_;
  MopEyeEngine* engine_ = nullptr;
  bool serving_ = false;
};

}  // namespace mopeye

#endif  // MOPEYE_CORE_TELEMETRY_SERVICE_H_
