// End-to-end crowdsourcing loop: N simulated devices opportunistically
// accumulate measurements, their uploaders batch and ship them over real
// mopnet TCP sockets, and one collector process ingests everything into the
// sharded streaming-aggregate store. The program then prints Fig. 9-style
// per-app RTT output from the aggregates and verifies them against an exact
// recomputation from the raw records (retained server-side for the check).
//
//   build/examples/collector_e2e [--devices=12] [--records=2500] [--seed=7]
//
// Exits nonzero if nothing was ingested, any record was lost, or any
// aggregate median/P95 drifts more than 5% from the exact value — CI runs
// this as the collector smoke test.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "collector/server.h"
#include "collector/uploader.h"
#include "core/measurement.h"
#include "crowd/analysis.h"
#include "crowd/world.h"
#include "net/net_context.h"
#include "net/server.h"
#include "sim/event_loop.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

struct Flags {
  int devices = 12;
  int records = 2500;  // per device
  uint64_t seed = 7;
};

Flags ParseFlags(int argc, char** argv) {
  Flags f;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--devices=", 10) == 0) {
      f.devices = std::atoi(arg + 10);
    } else if (std::strncmp(arg, "--records=", 10) == 0) {
      f.records = std::atoi(arg + 10);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      f.seed = static_cast<uint64_t>(std::atoll(arg + 7));
    } else if (std::strcmp(arg, "--help") == 0) {
      std::printf("flags: --devices=<n> --records=<per-device> --seed=<n>\n");
      std::exit(0);
    }
  }
  return f;
}

// One simulated phone: its own network context and measurement store, an
// uploader, and a generator that samples the paper-calibrated World model.
struct Device {
  std::unique_ptr<mopnet::NetContext> ctx;
  mopeye::MeasurementStore store;
  std::unique_ptr<mopcollect::Uploader> uploader;
  moputil::Rng rng{0};
  const mopcrowd::IspProfile* isp = nullptr;
  const mopcrowd::CountryProfile* country = nullptr;
  int remaining = 0;
};

}  // namespace

int main(int argc, char** argv) {
  Flags flags = ParseFlags(argc, argv);
  auto world = mopcrowd::World::Default();
  moputil::Rng rng(flags.seed);

  mopsim::EventLoop loop;
  mopnet::PathTable paths;
  paths.SetDefault(std::make_shared<moputil::FixedDelay>(moputil::Millis(20)));
  mopnet::ServerFarm farm;

  // The collector, listening where every device can reach it. Raw records
  // are retained only to verify the sketches below.
  mopcollect::CollectorServer collector({.shards = 16, .retain_records = true});
  moppkt::SocketAddr collector_addr{moppkt::IpAddr(10, 99, 0, 1), 9000};
  collector.RegisterWith(&farm, collector_addr);

  // ---- Device roster: country/ISP sampled from the world model ----
  std::vector<double> country_weights;
  for (const auto& c : world.countries()) {
    country_weights.push_back(c.user_weight);
  }
  std::vector<Device> devices(static_cast<size_t>(flags.devices));
  for (size_t d = 0; d < devices.size(); ++d) {
    Device& dev = devices[d];
    dev.rng = moputil::Rng(flags.seed ^ (0x9e3779b9ull * (d + 1)));
    dev.country = &world.countries()[rng.WeightedIndex(country_weights)];
    if (!dev.country->cellular_isps.empty()) {
      size_t pick = static_cast<size_t>(rng.UniformInt(
          0, static_cast<int64_t>(dev.country->cellular_isps.size()) - 1));
      dev.isp = &world.isps()[static_cast<size_t>(dev.country->cellular_isps[pick])];
    }
    dev.remaining = flags.records;

    mopnet::NetworkProfile profile;
    profile.type = mopnet::NetType::kWifi;
    profile.isp = dev.isp != nullptr ? dev.isp->name : "HomeFiber";
    profile.country = dev.country->code;
    profile.first_hop_one_way = std::make_shared<moputil::FixedDelay>(moputil::Millis(2));
    dev.ctx = std::make_unique<mopnet::NetContext>(&loop, profile, &paths, &farm,
                                                   moputil::Rng(flags.seed ^ (7919 * d)));

    mopcollect::UploaderPolicy policy;
    policy.min_batch_records = 200;
    policy.max_batch_age = moputil::Seconds(60);
    policy.poll_interval = moputil::Seconds(5);
    dev.uploader = std::make_unique<mopcollect::Uploader>(
        dev.ctx.get(), &dev.store, collector_addr, static_cast<uint32_t>(d), policy);
    dev.uploader->Start();
  }

  // Devices use the head apps (the Table 5 representatives at the front of
  // the world roster) so per-app record counts are deep enough to exercise
  // the aggregate sketches, weighted by installed-base x usage.
  const size_t head_apps = std::min<size_t>(world.apps().size(), 24);
  std::vector<double> app_weights;
  for (size_t a = 0; a < head_apps; ++a) {
    const auto& app = world.apps()[a];
    app_weights.push_back(app.install_rate * app.usage_weight);
  }
  std::vector<std::vector<double>> domain_weights(head_apps);
  for (size_t a = 0; a < head_apps; ++a) {
    for (const auto& g : world.apps()[a].domains) {
      domain_weights[a].push_back(g.traffic_weight);
    }
  }

  // ---- Opportunistic measurement generation, staged over sim time ----
  // Every sim-second each device "observes" a slice of its connections, so
  // uploads interleave with generation the way the paper's app behaves.
  constexpr int kGenSeconds = 60;
  const int slice = std::max(1, flags.records / kGenSeconds);
  std::function<void(size_t)> generate = [&](size_t d) {
    Device& dev = devices[d];
    int n = std::min(slice, dev.remaining);
    dev.remaining -= n;
    for (int i = 0; i < n; ++i) {
      size_t a = dev.rng.WeightedIndex(app_weights);
      const auto& app = world.apps()[a];
      bool wifi = dev.isp == nullptr || dev.rng.Bernoulli(0.5);
      mopnet::NetType net = wifi ? mopnet::NetType::kWifi : dev.isp->type;
      const mopcrowd::IspProfile* isp = wifi ? nullptr : dev.isp;

      mopeye::Measurement m;
      m.time = loop.Now();
      m.net_type = net;
      m.isp = wifi ? "HomeFiber" : dev.isp->name;
      m.country = dev.country->code;
      m.device_id = moputil::StrFormat("device-%zu", d);
      if (dev.rng.Bernoulli(0.3)) {
        m.kind = mopeye::MeasureKind::kDns;
        m.app = "(dns)";
        m.rtt = moputil::Millis(world.SampleDnsRttMs(
            net, isp, dev.country->wifi_dns_median_ms, dev.rng));
      } else {
        const auto& group = app.domains[dev.rng.WeightedIndex(domain_weights[a])];
        m.kind = mopeye::MeasureKind::kTcpConnect;
        m.app = app.label;
        m.domain = group.pattern;
        m.rtt = moputil::Millis(world.SampleAppRttMs(net, isp, group.placement, dev.rng));
      }
      dev.store.Add(std::move(m));
    }
    if (dev.remaining > 0) {
      loop.Schedule(moputil::kSecond, [&generate, d] { generate(d); });
    }
  };
  for (size_t d = 0; d < devices.size(); ++d) {
    loop.Schedule(moputil::Millis(static_cast<double>(d)), [&generate, d] { generate(d); });
  }

  // Generation + upload interleaving, then a final flush for the tails.
  loop.RunFor(moputil::Seconds(kGenSeconds + 90));
  for (auto& dev : devices) {
    dev.uploader->FlushNow();
  }
  loop.RunFor(moputil::Seconds(120));

  // ---- Report: Fig. 9-style per-app output from the streaming aggregates ----
  const uint64_t generated =
      static_cast<uint64_t>(flags.devices) * static_cast<uint64_t>(flags.records);
  const auto& counters = collector.counters();
  std::printf("collector: %s records from %d devices (%llu connections, %llu batches, "
              "%llu rejected)\n",
              moputil::WithCommas(static_cast<int64_t>(counters.records_ingested)).c_str(),
              flags.devices, static_cast<unsigned long long>(counters.connections),
              static_cast<unsigned long long>(counters.batches_ok),
              static_cast<unsigned long long>(counters.batches_rejected));
  std::printf("aggregate store: %zu keys over %zu shards, ~%zu bytes (%.1f B/record)\n\n",
              collector.store().key_count(), collector.store().shard_count(),
              collector.store().ApproxMemoryBytes(),
              counters.records_ingested > 0
                  ? static_cast<double>(collector.store().ApproxMemoryBytes()) /
                        static_cast<double>(counters.records_ingested)
                  : 0.0);

  // Exact recomputation from the raw records the collector retained.
  const mopcrowd::CrowdDataset& ds = collector.dataset();
  std::unordered_map<uint16_t, moputil::Samples> exact_by_app;
  for (const auto& r : ds.records()) {
    if (r.kind == mopcrowd::RecordKind::kTcp) {
      exact_by_app[r.app_id].Add(r.rtt_ms);
    }
  }
  std::unordered_map<std::string, uint16_t> app_id_by_name;
  for (const auto& [id, samples] : exact_by_app) {
    app_id_by_name[collector.apps().Name(id)] = id;
  }

  auto app_stats = collector.TcpAppStats(/*min_count=*/1);
  moputil::Table table({"app", "records", "p50 (sketch)", "p50 (exact)", "p95 (sketch)",
                        "p95 (exact)", "max err"});
  bool ok = true;
  double worst_err = 0;
  size_t shown = 0;
  size_t verified_apps = 0;
  for (const auto& s : app_stats) {
    const moputil::Samples& exact = exact_by_app[app_id_by_name[s.app]];
    double exact_p50 = exact.Median();
    double exact_p95 = exact.Percentile(95);
    double err50 = std::fabs(s.median_ms - exact_p50) / exact_p50;
    double err95 = std::fabs(s.p95_ms - exact_p95) / exact_p95;
    double err = std::max(err50, err95);
    // The 5% accuracy bar applies to apps with enough mass for P² to settle.
    if (s.count >= 200) {
      ++verified_apps;
      worst_err = std::max(worst_err, err);
      if (err > 0.05) {
        std::printf("FAIL: %s sketch error %.1f%% (p50 %.1f vs %.1f, p95 %.1f vs %.1f)\n",
                    s.app.c_str(), err * 100, s.median_ms, exact_p50, s.p95_ms, exact_p95);
        ok = false;
      }
    }
    if (shown < 12) {
      table.AddRow({s.app, moputil::WithCommas(static_cast<int64_t>(s.count)),
                    moputil::StrFormat("%.1fms", s.median_ms),
                    moputil::StrFormat("%.1fms", exact_p50),
                    moputil::StrFormat("%.1fms", s.p95_ms),
                    moputil::StrFormat("%.1fms", exact_p95),
                    moputil::StrFormat("%.2f%%", err * 100)});
      ++shown;
    }
  }
  std::printf("==== Fig. 9-style per-app RTT from live-ingested aggregates ====\n\n%s\n",
              table.Render().c_str());

  // The mopcrowd analyses run unchanged against the live dataset.
  auto cdfs = mopcrowd::AppRtts(ds);
  auto medians = mopcrowd::PerAppMedians(ds, /*min_count=*/200);
  std::printf("mopcrowd::AppRtts on live data: %zu TCP RTTs, median %.1f ms "
              "(WiFi %.1f / cellular %.1f)\n",
              cdfs.all.count(), cdfs.all.Median(),
              cdfs.wifi.empty() ? 0.0 : cdfs.wifi.Median(),
              cdfs.cellular.empty() ? 0.0 : cdfs.cellular.Median());
  std::printf("mopcrowd::PerAppMedians on live data: %zu apps, median-of-medians %.1f ms\n",
              medians.count(), medians.empty() ? 0.0 : medians.Median());

  auto isp_dns = collector.IspDnsStats(/*min_count=*/50);
  if (!isp_dns.empty()) {
    std::printf("\n==== Fig. 11-style ISP DNS medians (top %zu) ====\n\n",
                std::min<size_t>(isp_dns.size(), 5));
    moputil::Table dns_table({"isp", "net", "records", "p50", "p95"});
    for (size_t i = 0; i < isp_dns.size() && i < 5; ++i) {
      const auto& s = isp_dns[i];
      dns_table.AddRow({s.isp, mopnet::NetTypeName(static_cast<mopnet::NetType>(s.net_type)),
                        moputil::WithCommas(static_cast<int64_t>(s.count)),
                        moputil::StrFormat("%.1fms", s.median_ms),
                        moputil::StrFormat("%.1fms", s.p95_ms)});
    }
    std::printf("%s\n", dns_table.Render().c_str());
  }

  // ---- Smoke-test verdict ----
  if (counters.records_ingested == 0) {
    std::printf("FAIL: no records ingested\n");
    ok = false;
  }
  if (counters.records_ingested != generated) {
    std::printf("FAIL: generated %llu records but ingested %llu\n",
                static_cast<unsigned long long>(generated),
                static_cast<unsigned long long>(counters.records_ingested));
    ok = false;
  }
  for (auto& dev : devices) {
    dev.uploader->Stop();
  }
  std::printf("\n%s: %llu/%llu records ingested, %zu apps verified, worst sketch error "
              "%.2f%% (bar: 5%%)\n",
              ok ? "OK" : "FAILED",
              static_cast<unsigned long long>(counters.records_ingested),
              static_cast<unsigned long long>(generated), verified_apps, worst_err * 100);
  return ok ? 0 : 1;
}
