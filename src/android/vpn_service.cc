#include "android/vpn_service.h"

#include "android/device.h"
#include "util/logging.h"

namespace mopdroid {

VpnService::Builder::Builder(VpnService* service) : service_(service) {
  MOP_CHECK(service != nullptr);
}

VpnService::Builder& VpnService::Builder::addAddress(const moppkt::IpAddr& addr) {
  addresses_.push_back(addr);
  return *this;
}

VpnService::Builder& VpnService::Builder::addRoute(const moppkt::IpAddr&, int) {
  return *this;  // we always route everything, as MopEye does (0.0.0.0/0)
}

VpnService::Builder& VpnService::Builder::addDnsServer(const moppkt::IpAddr&) { return *this; }

VpnService::Builder& VpnService::Builder::setSession(const std::string& name) {
  session_ = name;
  return *this;
}

moputil::Status VpnService::Builder::addDisallowedApplication(const std::string& package) {
  AndroidDevice* dev = service_->device_;
  if (dev->sdk_version() < kSdkLollipop) {
    return moputil::Unimplemented("addDisallowedApplication requires SDK >= 21, device has " +
                                  std::to_string(dev->sdk_version()));
  }
  auto info = dev->package_manager().GetPackageByName(package);
  if (!info) {
    return moputil::NotFound("package not installed: " + package);
  }
  disallowed_.insert(package);
  return moputil::OkStatus();
}

TunDevice* VpnService::Builder::establish() {
  if (addresses_.empty() || service_->active()) {
    return nullptr;
  }
  AndroidDevice* dev = service_->device_;
  service_->tun_ = std::make_unique<TunDevice>(dev->loop());
  service_->tun_address_ = addresses_.front();
  service_->disallowed_uids_.clear();
  for (const auto& pkg : disallowed_) {
    auto info = dev->package_manager().GetPackageByName(pkg);
    if (info) {
      service_->disallowed_uids_.insert(info->uid);
    }
  }
  std::set<int> disallowed_uids = service_->disallowed_uids_;
  dev->ActivateVpn(service_->tun_.get(), service_->tun_address_,
                   [disallowed_uids](int uid) { return disallowed_uids.count(uid) > 0; });
  return service_->tun_.get();
}

VpnService::VpnService(AndroidDevice* device) : device_(device) {
  MOP_CHECK(device != nullptr);
  // Default protect() cost: usually ~0.2-0.8 ms, occasionally a few ms
  // (binder round-trip to the system server, §3.5.2).
  protect_cost_ = std::make_shared<moputil::MixtureDelay>(
      std::vector<moputil::MixtureDelay::Component>{
          {0.85, std::make_shared<moputil::LogNormalDelay>(moputil::Micros(350), 0.5,
                                                           moputil::Micros(80))},
          {0.15, std::make_shared<moputil::UniformDelay>(moputil::Millis(1), moputil::Millis(6))},
      });
}

VpnService::~VpnService() { Stop(); }

moputil::SimDuration VpnService::SampleProtectCost() {
  ++protect_calls_;
  return protect_cost_ ? protect_cost_->Sample(device_->rng()) : 0;
}

moputil::SimDuration VpnService::protect(mopnet::SocketChannel& socket) {
  socket.set_protected_socket(true);
  return SampleProtectCost();
}

moputil::SimDuration VpnService::protect(mopnet::UdpSocket& socket) {
  socket.set_protected_socket(true);
  return SampleProtectCost();
}

void VpnService::Stop() {
  if (tun_) {
    tun_->Close();
    device_->DeactivateVpn();
    tun_.reset();
  }
}

}  // namespace mopdroid
