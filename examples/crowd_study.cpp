// The crowdsourcing study end to end at reduced scale: generate a dataset
// with the paper-calibrated world model and run the §4.2 analyses over it.
//
//   build/examples/crowd_study [scale]
#include <cstdio>
#include <cstdlib>

#include "crowd/analysis.h"
#include "crowd/study.h"
#include "crowd/world.h"
#include "util/strings.h"

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::atof(argv[1]) : 0.1;
  auto world = mopcrowd::World::Default();
  mopcrowd::StudyConfig cfg;
  cfg.scale = scale;
  mopcrowd::Study study(&world, cfg);
  std::printf("generating the crowd dataset at scale %.2f...\n", scale);
  auto ds = study.Run();

  auto totals = mopcrowd::Totals(ds);
  std::printf("dataset: %s measurements (%s TCP, %s DNS) from %zu devices, %zu apps, "
              "%zu domains\n",
              moputil::WithCommas(static_cast<int64_t>(totals.measurements)).c_str(),
              moputil::WithCommas(static_cast<int64_t>(totals.tcp)).c_str(),
              moputil::WithCommas(static_cast<int64_t>(totals.dns)).c_str(), totals.devices,
              totals.apps, totals.domains);

  auto apps = mopcrowd::AppRtts(ds);
  std::printf("\napp RTT medians: all %.0f ms | WiFi %.0f ms | cellular %.0f ms | LTE %.0f "
              "ms\n",
              apps.all.Median(), apps.wifi.Median(), apps.cellular.Median(),
              apps.lte.Median());
  auto dns = mopcrowd::DnsRtts(ds);
  std::printf("DNS medians:     all %.0f ms | WiFi %.0f ms | 4G %.0f ms | 3G %.0f ms | 2G "
              "%.0f ms\n",
              dns.all.Median(), dns.wifi.Median(), dns.lte.Median(), dns.g3.Median(),
              dns.g2.Median());

  std::printf("\ntop ISPs by LTE DNS measurements:\n");
  for (const auto& isp : mopcrowd::IspDnsStats(ds, world, 8)) {
    std::printf("  %-14s %-10s %8s samples  median %5.1f ms\n", isp.name.c_str(),
                isp.country.c_str(),
                moputil::WithCommas(static_cast<int64_t>(isp.count)).c_str(), isp.median_ms);
  }
  return 0;
}
