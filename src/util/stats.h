// Summary statistics used throughout the benches and the crowd analysis:
// online mean/variance, percentile/median over samples, CDF evaluation, and
// fixed-bucket histograms (the paper's Table 1 delay buckets).
#ifndef MOPEYE_UTIL_STATS_H_
#define MOPEYE_UTIL_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

namespace moputil {

// Streaming mean / variance / min / max (Welford).
class OnlineStats {
 public:
  void Add(double x);
  size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

 private:
  size_t count_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
};

// A bag of samples with percentile queries. Sorting is done lazily and cached.
class Samples {
 public:
  void Add(double x);
  void Reserve(size_t n) { values_.reserve(n); }
  size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  // Percentile in [0, 100] with linear interpolation. Requires !empty().
  double Percentile(double p) const;
  double Median() const { return Percentile(50.0); }
  double Min() const;
  double Max() const;
  double Mean() const;

  // Fraction of samples <= x (empirical CDF).
  double CdfAt(double x) const;
  // Fraction of samples strictly above x.
  double FractionAbove(double x) const { return 1.0 - CdfAt(x); }

  // Evenly spaced CDF points for plotting: pairs of (value, cumulative frac).
  std::vector<std::pair<double, double>> CdfCurve(size_t points = 50) const;

  const std::vector<double>& values() const { return values_; }

 private:
  void EnsureSorted() const;

  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
};

// Counts samples into caller-defined right-open buckets, e.g. Table 1's
// {0-1ms, 1-2ms, 2-5ms, 5-10ms, >10ms}. `edges` are the interior boundaries.
class BucketHistogram {
 public:
  // edges must be strictly increasing; buckets are
  // [-inf,e0), [e0,e1), ..., [e_{n-1}, +inf).
  explicit BucketHistogram(std::vector<double> edges);

  void Add(double x);
  size_t total() const { return total_; }
  size_t bucket_count() const { return counts_.size(); }
  size_t count(size_t bucket) const { return counts_[bucket]; }
  // Label like "0~1", "1~2", ">10" given a unit suffix.
  std::string BucketLabel(size_t bucket, const std::string& unit) const;

 private:
  std::vector<double> edges_;
  std::vector<size_t> counts_;
  size_t total_ = 0;
};

// Renders an ASCII CDF plot (for the figure benches). `curves` is a list of
// (label, samples). Values are plotted on [0, x_max] with `width` columns.
std::string AsciiCdfPlot(const std::vector<std::pair<std::string, const Samples*>>& curves,
                         double x_max, size_t width = 64, size_t height = 16,
                         const std::string& x_label = "ms");

}  // namespace moputil

#endif  // MOPEYE_UTIL_STATS_H_
