#include "apps/tcp_client.h"

#include <algorithm>

#include "netpkt/packet_buf.h"
#include "util/logging.h"

namespace mopapps {

namespace {
constexpr uint32_t kInitialCwndSegments = 10;
constexpr uint16_t kAppMss = 1460;
constexpr uint16_t kAppWindow = 65535;

std::vector<uint8_t> Pattern(size_t n) {
  std::vector<uint8_t> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = static_cast<uint8_t>((i * 131) & 0xff);
  }
  return v;
}
}  // namespace

const char* AppTcpStateName(AppTcpState s) {
  switch (s) {
    case AppTcpState::kClosed:
      return "CLOSED";
    case AppTcpState::kSynSent:
      return "SYN_SENT";
    case AppTcpState::kEstablished:
      return "ESTABLISHED";
    case AppTcpState::kFinWait1:
      return "FIN_WAIT_1";
    case AppTcpState::kFinWait2:
      return "FIN_WAIT_2";
    case AppTcpState::kCloseWait:
      return "CLOSE_WAIT";
    case AppTcpState::kLastAck:
      return "LAST_ACK";
    case AppTcpState::kClosing:
      return "CLOSING";
    case AppTcpState::kTimeWait:
      return "TIME_WAIT";
  }
  return "?";
}

std::shared_ptr<AppTcpConnection> AppTcpConnection::Create(TunNetStack* stack, int uid) {
  return std::shared_ptr<AppTcpConnection>(new AppTcpConnection(stack, uid));
}

AppTcpConnection::AppTcpConnection(TunNetStack* stack, int uid) : stack_(stack), uid_(uid) {
  MOP_CHECK(stack != nullptr);
}

AppTcpConnection::~AppTcpConnection() {
  if (conn_handle_ != 0) {
    stack_->device()->conn_table().Unregister(conn_handle_);
  }
}

void AppTcpConnection::Connect(const moppkt::SocketAddr& remote,
                               std::function<void(moputil::Status)> cb) {
  MOP_CHECK(state_ == AppTcpState::kClosed) << "connect in " << AppTcpStateName(state_);
  remote_ = remote;
  connect_cb_ = std::move(cb);
  local_.ip = stack_->device()->tun_address();
  local_.port = stack_->AllocatePort();

  // The kernel writes the conn-table row at connect() time with the app uid —
  // this is what /proc/net/tcp exposes to the mapper.
  mopnet::ConnEntry entry;
  entry.proto = moppkt::IpProto::kTcp;
  entry.local = local_;
  entry.remote = remote_;
  entry.state = mopnet::ConnState::kSynSent;
  entry.uid = uid_;
  conn_handle_ = stack_->device()->conn_table().Register(entry);

  auto self = shared_from_this();
  stack_->RegisterTcp(local_.port, [self](const moppkt::ParsedPacket& pkt) {
    self->OnPacket(pkt);
  });

  iss_ = static_cast<uint32_t>(stack_->device()->rng().NextU32());
  snd_una_ = iss_;
  snd_nxt_ = iss_ + 1;  // SYN consumes one
  cwnd_ = kInitialCwndSegments * kAppMss;
  state_ = AppTcpState::kSynSent;
  syn_time_ = stack_->loop()->Now();
  EmitSegment(moppkt::SynFlag(), {}, /*with_mss=*/true);
  ArmRetransmit(kSynRto);
}

void AppTcpConnection::EmitSegment(moppkt::TcpFlags flags, std::span<const uint8_t> payload,
                                   bool with_mss) {
  moppkt::TcpSegmentSpec spec;
  spec.src_port = local_.port;
  spec.dst_port = remote_.port;
  // Only control segments go through here (SYN/ACK/FIN/RST with no payload);
  // data segments are built in TrySendData with explicit sequence numbers.
  spec.seq = flags.syn ? iss_ : snd_nxt_;
  spec.ack = flags.ack ? rcv_nxt_ : 0;
  spec.flags = flags;
  spec.window = kAppWindow;
  if (with_mss) {
    spec.mss = kAppMss;
  }
  spec.payload = payload;
  SendSpec(spec);
}

void AppTcpConnection::SendSpec(const moppkt::TcpSegmentSpec& spec) {
  // Pooled in-place build: the app's "kernel" emits straight into a slab the
  // TUN and the relay reuse, so the zero-alloc steady state holds end to end
  // (app build -> tun -> owning engine lane).
  moppkt::PacketBuf datagram =
      moppkt::BufPool::Default().AcquireSized(20 + moppkt::TcpSegmentBytes(spec));
  datagram.set_size(moppkt::BuildTcpDatagramInto(spec, local_.ip, remote_.ip, ip_id_++,
                                                 /*ttl=*/64, datagram.writable()));
  stack_->Send(std::move(datagram));
}

void AppTcpConnection::OnPacket(const moppkt::ParsedPacket& pkt) {
  if (!pkt.is_tcp()) {
    return;
  }
  const moppkt::TcpSegment& seg = *pkt.tcp;
  if (seg.flags.rst) {
    // RST is valid in any non-closed state.
    if (state_ != AppTcpState::kClosed) {
      EnterClosed();
      if (connect_cb_) {
        FailConnect(moputil::Unavailable("connection reset"));
      } else if (on_reset) {
        on_reset();
      }
    }
    return;
  }
  switch (state_) {
    case AppTcpState::kSynSent:
      if (seg.flags.syn && seg.flags.ack && seg.ack == iss_ + 1) {
        HandleSynAck(seg);
      }
      break;
    case AppTcpState::kEstablished:
    case AppTcpState::kFinWait1:
    case AppTcpState::kFinWait2:
    case AppTcpState::kCloseWait:
    case AppTcpState::kLastAck:
    case AppTcpState::kClosing:
      HandleEstablished(pkt);
      break;
    default:
      break;
  }
}

void AppTcpConnection::HandleSynAck(const moppkt::TcpSegment& seg) {
  if (rto_timer_ != mopsim::kInvalidTimer) {
    stack_->loop()->Cancel(rto_timer_);
    rto_timer_ = mopsim::kInvalidTimer;
  }
  rcv_nxt_ = seg.seq + 1;
  irs_ = rcv_nxt_;
  snd_una_ = seg.ack;
  if (seg.mss.has_value()) {
    peer_mss_ = *seg.mss;
  }
  peer_window_ = seg.window;
  state_ = AppTcpState::kEstablished;
  connect_latency_ = stack_->loop()->Now() - syn_time_;
  stack_->device()->conn_table().UpdateState(conn_handle_, mopnet::ConnState::kEstablished);
  SendAck();
  if (connect_cb_) {
    auto cb = std::move(connect_cb_);
    connect_cb_ = nullptr;
    cb(moputil::OkStatus());
  }
  TrySendData();
}

void AppTcpConnection::HandleEstablished(const moppkt::ParsedPacket& pkt) {
  const moppkt::TcpSegment& seg = *pkt.tcp;
  bool advanced = false;

  // ACK processing.
  if (seg.flags.ack && moppkt::SeqGt(seg.ack, snd_una_)) {
    uint32_t acked = seg.ack - snd_una_;
    uint32_t data_acked = std::min<uint32_t>(acked, static_cast<uint32_t>(unacked_.size()));
    unacked_.erase(unacked_.begin(), unacked_.begin() + data_acked);
    snd_una_ = seg.ack;
    cwnd_ += kAppMss;  // slow-start growth; the tunnel never drops
    advanced = true;
    if (state_ == AppTcpState::kFinWait1 && fin_sent_ && snd_una_ == snd_nxt_) {
      state_ = AppTcpState::kFinWait2;
    } else if (state_ == AppTcpState::kLastAck && snd_una_ == snd_nxt_) {
      EnterClosed();
      return;
    } else if (state_ == AppTcpState::kClosing && snd_una_ == snd_nxt_) {
      state_ = AppTcpState::kTimeWait;
      EnterClosed();  // TIME_WAIT collapses immediately in simulation
      return;
    }
  }
  peer_window_ = seg.window;

  // In-order data.
  if (!seg.payload.empty() && seg.seq == rcv_nxt_) {
    AcceptPayload(seg.payload);
    DrainReassembly();
  } else if (!seg.payload.empty() && moppkt::SeqLt(seg.seq, rcv_nxt_)) {
    SendAck();  // duplicate; re-ack
  } else if (!seg.payload.empty()) {
    // Ahead of rcv_nxt_: the relay's gathered lane writes can deliver a
    // burst early when a flow is re-homed mid-transfer. Nothing is dropped
    // upstream, so buffer and re-ack exactly as a kernel would.
    reassembly_.emplace(seg.seq - irs_,
                        std::vector<uint8_t>(seg.payload.begin(), seg.payload.end()));
    SendAck();
  }

  // FIN processing at its sequence position; an early FIN (reordered past a
  // data gap) waits buffered until the gap closes.
  if (seg.flags.fin) {
    fin_buffered_ = true;
    fin_seq_ = seg.seq + static_cast<uint32_t>(seg.payload_size());
  }
  if (fin_buffered_ && fin_seq_ == rcv_nxt_) {
    fin_buffered_ = false;
    rcv_nxt_ += 1;
    SendAck();
    if (state_ == AppTcpState::kEstablished) {
      state_ = AppTcpState::kCloseWait;
      if (on_peer_close) {
        on_peer_close();
      }
    } else if (state_ == AppTcpState::kFinWait1) {
      state_ = fin_sent_ && snd_una_ == snd_nxt_ ? AppTcpState::kTimeWait
                                                 : AppTcpState::kClosing;
      if (state_ == AppTcpState::kTimeWait) {
        EnterClosed();
        return;
      }
    } else if (state_ == AppTcpState::kFinWait2) {
      if (on_peer_close) {
        on_peer_close();
      }
      EnterClosed();
      return;
    }
  }

  if (advanced) {
    TrySendData();
  }
}

void AppTcpConnection::AcceptPayload(std::span<const uint8_t> payload) {
  rcv_nxt_ += static_cast<uint32_t>(payload.size());
  bytes_received_ += payload.size();
  SimTime now = stack_->loop()->Now();
  if (first_data_time_ == 0) {
    first_data_time_ = now;
  }
  last_data_time_ = now;
  // Delayed ACK: every second segment (or FIN below) to mirror kernels.
  if (++delayed_ack_count_ >= 2) {
    delayed_ack_count_ = 0;
    SendAck();
  }
  if (on_data) {
    on_data(payload);
  }
}

void AppTcpConnection::DrainReassembly() {
  auto it = reassembly_.begin();
  while (it != reassembly_.end()) {
    uint32_t seq_off = it->first;
    uint32_t rcv_off = rcv_nxt_ - irs_;
    const std::vector<uint8_t>& data = it->second;
    if (seq_off > rcv_off) {
      break;  // gap still open
    }
    uint32_t end_off = seq_off + static_cast<uint32_t>(data.size());
    if (end_off > rcv_off) {
      // Accept the unseen tail (full segment when seq_off == rcv_off).
      AcceptPayload(std::span<const uint8_t>(data).subspan(rcv_off - seq_off));
    }
    it = reassembly_.erase(it);
  }
}

void AppTcpConnection::Send(std::vector<uint8_t> data) {
  MOP_CHECK(state_ == AppTcpState::kSynSent || state_ == AppTcpState::kEstablished ||
            state_ == AppTcpState::kCloseWait)
      << "send in " << AppTcpStateName(state_);
  send_queue_.insert(send_queue_.end(), data.begin(), data.end());
  if (state_ != AppTcpState::kSynSent) {
    TrySendData();
  }
}

void AppTcpConnection::SendBytes(size_t n) { Send(Pattern(n)); }

void AppTcpConnection::TrySendData() {
  if (state_ != AppTcpState::kEstablished && state_ != AppTcpState::kCloseWait &&
      state_ != AppTcpState::kFinWait1) {
    return;
  }
  uint32_t window = std::min<uint32_t>(peer_window_, cwnd_);
  while (!send_queue_.empty()) {
    uint32_t in_flight = snd_nxt_ - snd_una_;
    if (in_flight >= window) {
      break;
    }
    size_t budget = std::min<size_t>(window - in_flight, peer_mss_);
    size_t n = std::min(budget, send_queue_.size());
    if (n == 0) {
      break;
    }
    std::vector<uint8_t> payload(send_queue_.begin(),
                                 send_queue_.begin() + static_cast<long>(n));
    send_queue_.erase(send_queue_.begin(), send_queue_.begin() + static_cast<long>(n));

    moppkt::TcpSegmentSpec spec;
    spec.src_port = local_.port;
    spec.dst_port = remote_.port;
    spec.seq = snd_nxt_;
    spec.ack = rcv_nxt_;
    spec.flags = moppkt::PshAckFlag();
    spec.window = kAppWindow;
    spec.payload = payload;
    SendSpec(spec);

    snd_nxt_ += static_cast<uint32_t>(n);
    bytes_sent_ += n;
    unacked_.insert(unacked_.end(), payload.begin(), payload.end());
    if (rto_timer_ == mopsim::kInvalidTimer) {
      ArmRetransmit(kDataRto);
    }
  }
  // Flush a pending FIN once all data is out.
  if (fin_pending_ && send_queue_.empty() && !fin_sent_) {
    fin_pending_ = false;
    fin_sent_ = true;
    EmitSegment(moppkt::FinAckFlag(), {});
    snd_nxt_ += 1;
  }
}

void AppTcpConnection::SendAck() { EmitSegment(moppkt::AckFlag(), {}); }

void AppTcpConnection::Close() {
  switch (state_) {
    case AppTcpState::kEstablished:
      state_ = AppTcpState::kFinWait1;
      break;
    case AppTcpState::kCloseWait:
      state_ = AppTcpState::kLastAck;
      break;
    case AppTcpState::kSynSent:
      FailConnect(moputil::Unavailable("closed before established"));
      EnterClosed();
      return;
    default:
      return;
  }
  stack_->device()->conn_table().UpdateState(conn_handle_, state_ == AppTcpState::kFinWait1
                                                               ? mopnet::ConnState::kFinWait1
                                                               : mopnet::ConnState::kLastAck);
  if (send_queue_.empty()) {
    fin_sent_ = true;
    EmitSegment(moppkt::FinAckFlag(), {});
    snd_nxt_ += 1;
  } else {
    fin_pending_ = true;
  }
}

void AppTcpConnection::Abort() {
  if (state_ == AppTcpState::kClosed) {
    return;
  }
  EmitSegment(moppkt::RstFlag(), {});
  EnterClosed();
}

void AppTcpConnection::ArmRetransmit(SimDuration delay) {
  std::weak_ptr<AppTcpConnection> weak = weak_from_this();
  rto_timer_ = stack_->loop()->Schedule(delay, [weak] {
    if (auto self = weak.lock()) {
      self->rto_timer_ = mopsim::kInvalidTimer;
      self->OnRetransmitTimer();
    }
  });
}

void AppTcpConnection::OnRetransmitTimer() {
  if (state_ == AppTcpState::kSynSent) {
    if (++syn_retransmits_ > kMaxSynRetries) {
      FailConnect(moputil::Unavailable("connect timed out"));
      EnterClosed();
      return;
    }
    EmitSegment(moppkt::SynFlag(), {}, /*with_mss=*/true);
    ArmRetransmit(kSynRto << syn_retransmits_);
    return;
  }
  if (!unacked_.empty()) {
    ++data_retransmits_;
    size_t n = std::min<size_t>(unacked_.size(), peer_mss_);
    std::vector<uint8_t> payload(unacked_.begin(), unacked_.begin() + static_cast<long>(n));
    moppkt::TcpSegmentSpec spec;
    spec.src_port = local_.port;
    spec.dst_port = remote_.port;
    spec.seq = snd_una_;
    spec.ack = rcv_nxt_;
    spec.flags = moppkt::PshAckFlag();
    spec.window = kAppWindow;
    spec.payload = payload;
    SendSpec(spec);
    ArmRetransmit(kDataRto * 2);
  }
}

void AppTcpConnection::FailConnect(moputil::Status status) {
  if (connect_cb_) {
    auto cb = std::move(connect_cb_);
    connect_cb_ = nullptr;
    cb(status);
  }
}

void AppTcpConnection::EnterClosed() {
  state_ = AppTcpState::kClosed;
  if (rto_timer_ != mopsim::kInvalidTimer) {
    stack_->loop()->Cancel(rto_timer_);
    rto_timer_ = mopsim::kInvalidTimer;
  }
  stack_->UnregisterTcp(local_.port);
  if (conn_handle_ != 0) {
    stack_->device()->conn_table().Unregister(conn_handle_);
    conn_handle_ = 0;
  }
}

}  // namespace mopapps
