// moptel: the self-measurement plane. MopEye's pitch is measurement, so the
// reproduction instruments itself the same way it instruments apps: named
// counters, gauges, and log-bucket latency histograms, sharded per worker
// lane exactly like Engine::Counters so the relay hot path increments a plain
// uint64_t — no atomics, no locks, no steady-state allocation — and readers
// merge on demand. Rendered as Prometheus-style text exposition (scraped over
// mopnet by the engine and the collectors) or JSON (dumped by the benches).
#ifndef MOPEYE_TELEMETRY_METRICS_H_
#define MOPEYE_TELEMETRY_METRICS_H_

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/stats.h"

namespace moptel {

// One cache line per lane so lanes promoted to real threads (the TSan lane
// runs them concurrently in tests) never false-share a counter word.
struct alignas(64) LaneCell {
  uint64_t v = 0;
};

// Monotonic counter, one cell per lane. Writers touch only their own lane's
// cell; Value() merges by summing, which is exact because each cell is
// single-writer.
class Counter {
 public:
  explicit Counter(size_t lanes) : cells_(lanes) {}

  void Inc(size_t lane) { ++cells_[lane].v; }
  void Add(size_t lane, uint64_t n) { cells_[lane].v += n; }

  uint64_t Value() const {
    uint64_t sum = 0;
    for (const LaneCell& c : cells_) sum += c.v;
    return sum;
  }
  uint64_t LaneValue(size_t lane) const { return cells_[lane].v; }
  size_t lanes() const { return cells_.size(); }

 private:
  std::vector<LaneCell> cells_;
};

// How per-lane gauge cells fold into the exported global. kSum for additive
// quantities (queue depths, live clients); kMax for high-water marks, where
// summing per-lane peaks is only an upper bound (the engine's old
// clients_high_water bug, ISSUE 7 satellite).
enum class GaugeMerge { kSum, kMax };

class Gauge {
 public:
  Gauge(size_t lanes, GaugeMerge merge) : merge_(merge), cells_(lanes) {}

  void Set(size_t lane, uint64_t v) { cells_[lane].v = v; }
  void SetMax(size_t lane, uint64_t v) {
    if (v > cells_[lane].v) cells_[lane].v = v;
  }

  uint64_t Value() const {
    uint64_t out = 0;
    for (const LaneCell& c : cells_) {
      out = merge_ == GaugeMerge::kSum ? out + c.v : (c.v > out ? c.v : out);
    }
    return out;
  }
  uint64_t LaneValue(size_t lane) const { return cells_[lane].v; }
  GaugeMerge merge() const { return merge_; }
  size_t lanes() const { return cells_.size(); }

 private:
  GaugeMerge merge_;
  std::vector<LaneCell> cells_;
};

// Latency histogram with moputil::LogQuantile's exact bucket geometry, but
// with the span preallocated across the full clamp range
// [kLogQuantileMin, kLogQuantileMax] so Observe() never grows a vector.
// Merged() restores the summed buckets into a LogQuantile, so quantile
// answers are bit-identical to feeding every sample through one sketch.
//
// Observe() avoids libm's log() on the hot path with a cell table built at
// construction: the sample's exponent and top mantissa bits index a cell
// that pre-resolves the bucket, with the cell's bucket boundary shrunk
// inward by a relative margin orders of magnitude wider than the worst-case
// log/multiply rounding error. Any sample the cell accepts provably gets the
// same bucket IndexOf() would compute; samples inside the ~1e-9 boundary
// sliver (and anything outside the table's range: NaN, negatives, the zero
// bucket, the clamp) fall back to the exact slow path. Steady state is one
// add, a shift, and two compares per sample.
class Histogram {
 public:
  Histogram(size_t lanes, double rel_err = 0.02);

  void Observe(size_t lane, double x) {
    Shard& s = shards_[lane];
    s.sum += x;
    uint64_t bits;
    std::memcpy(&bits, &x, sizeof(bits));  // NaN/negative/zero index out of range
    uint64_t cell = (bits >> cell_shift_) - cell_base_;
    if (cell < num_cells_) {
      const Cell& c = cells_[cell];
      if (x <= c.hi0) {
        if (x >= c.lo0) {
          ++s.counts[c.slot0];
          return;
        }
      } else if (x >= c.lo1) {
        ++s.counts[c.slot0 + 1];
        return;
      }
    }
    ObserveSlow(&s, x);
  }

  moputil::LogQuantile Merged() const;
  uint64_t Count() const;
  double Sum() const;
  uint64_t LaneCount(size_t lane) const;
  double LaneSum(size_t lane) const { return shards_[lane].sum; }
  // Per-lane quantile (percentile in [0,100]); requires LaneCount(lane) > 0.
  double LaneQuantile(size_t lane, double percentile) const;
  size_t lanes() const { return shards_.size(); }
  size_t bucket_span() const { return static_cast<size_t>(hi_index_ - lo_index_) + 1; }
  double rel_err() const { return rel_err_; }
  // Identity of the immutable cell table. Same-geometry histograms (equal
  // rel_err) share one table through a process-wide cache instead of each
  // rebuilding ~2k cells; telemetry_test asserts the pointer equality.
  const void* cell_table_id() const { return table_.get(); }

 private:
  // Per-lane shard; padded out so concurrent real-thread writers (TSan test)
  // never share a line through the vector metadata of a neighbor.
  // The observation total is not stored: it is zero_or_less plus the sum of
  // counts, computed at read time, so the hot path pays one fewer
  // read-modify-write per sample.
  struct alignas(64) Shard {
    uint64_t zero_or_less = 0;
    double sum = 0;
    std::vector<uint32_t> counts;  // fixed span, preallocated
  };

  // One entry per (exponent, top mantissa bits) cell. Cells are narrower
  // than a bucket, so a cell overlaps at most two buckets: x <= hi0 and
  // x >= lo0 proves bucket slot0; x >= lo1 proves slot0 + 1; the margin
  // sliver in between goes to the slow path. Single-bucket cells set
  // hi0 = +inf (the cell index already bounds x from above).
  struct Cell {
    double lo0 = 0;
    double hi0 = 0;
    double lo1 = 0;
    uint32_t slot0 = 0;
    uint32_t pad = 0;
  };

  // The cell table is immutable after construction and a pure function of
  // rel_err (the rest of the geometry derives from it plus the global clamp
  // range), so same-geometry histograms share one table via a process-wide
  // cache. cells empty = no fast path (rel_err too tight for a useful split).
  struct Table {
    uint32_t cell_shift = 63;
    uint64_t cell_base = 0;
    std::vector<Cell> cells;
  };

  // Must stay the exact expression moputil::LogQuantile uses so bucket
  // boundaries are bit-identical.
  int IndexOf(double x) const {
    return static_cast<int>(std::floor(std::log(x) * inv_log_gamma_));
  }
  void ObserveSlow(Shard* s, double x);
  static std::shared_ptr<const Table> AcquireTable(double rel_err,
                                                   double log_gamma,
                                                   int lo_index, int hi_index,
                                                   double max_clamp);
  static void BuildTable(Table* table, double log_gamma, int lo_index,
                         int hi_index, double max_clamp);
  moputil::LogQuantile LaneSketch(size_t lane) const;

  double rel_err_;
  double inv_log_gamma_;
  double log_gamma_;
  double max_clamp_;
  int lo_index_;
  int hi_index_;
  std::shared_ptr<const Table> table_;
  // Hot-path copies of the table fields: one indirection fewer per Observe.
  uint32_t cell_shift_ = 63;  // no-table default: every sample goes slow path
  uint64_t cell_base_ = 0;
  const Cell* cells_ = nullptr;
  size_t num_cells_ = 0;
  std::vector<Shard> shards_;
};

// A point-in-time reading of one registry metric, in a form a wire codec can
// ship: counters and gauges as merged scalars, histograms as their exact
// sparse log-bucket state (absolute bucket index + count), so a remote
// aggregator can rebuild a bit-identical moputil::LogQuantile via Restore()
// and rollups across devices stay lossless (bucket addition, no resketching).
struct MetricSample {
  enum class Kind : uint8_t { kCounter = 0, kGauge = 1, kHistogram = 2 };

  std::string name;
  Kind kind = Kind::kCounter;
  GaugeMerge merge = GaugeMerge::kSum;  // gauges only
  uint64_t value = 0;                   // counter total / merged gauge value
  // Histograms only: geometry + merged sparse buckets.
  double rel_err = 0;
  double sum = 0;
  uint64_t zero_or_less = 0;
  std::vector<std::pair<int32_t, uint64_t>> buckets;  // (abs index, count>0)

  // Total observation count (histograms).
  uint64_t Count() const {
    uint64_t n = zero_or_less;
    for (const auto& b : buckets) n += b.second;
    return n;
  }
};

// A named metric registry. Metrics are either *owned* (Counter/Gauge/
// Histogram allocated here; hot paths hold the raw pointer, which stays
// stable for the registry's lifetime) or *external* (a read callback over
// state that already exists — BufPool::Stats, TunDevice counters — polled at
// render time so legacy stats surface without rewriting their owners).
class Registry {
 public:
  explicit Registry(size_t lanes);
  ~Registry();  // out-of-line: Entry is incomplete here
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter* AddCounter(std::string name, std::string help);
  Gauge* AddGauge(std::string name, std::string help, GaugeMerge merge = GaugeMerge::kSum);
  Histogram* AddHistogram(std::string name, std::string help, double rel_err = 0.02);

  // External reads. The lane-sharded variant renders one line per lane plus
  // the summed total, mirroring owned counters.
  void AddExternalCounter(std::string name, std::string help, std::function<uint64_t()> read);
  void AddExternalLaneCounter(std::string name, std::string help,
                              std::function<uint64_t(size_t lane)> read);
  void AddExternalGauge(std::string name, std::string help, std::function<uint64_t()> read);

  // Merged value lookups by name (owned and external alike). Used by the
  // scrape exactness assertions; returns false if no such metric.
  bool CounterValue(std::string_view name, uint64_t* out) const;
  bool GaugeValue(std::string_view name, uint64_t* out) const;
  const Histogram* FindHistogram(std::string_view name) const;

  // Snapshot every metric whose name passes `filter` (null = all) into
  // MetricSamples, in registration order. External counters/gauges read
  // their callbacks; external lane counters sample as plain counters.
  // The Uploader uses this with an allowlist to piggyback device health
  // on upload batches.
  std::vector<MetricSample> Sample(
      const std::function<bool(std::string_view)>& filter = nullptr) const;

  // Prometheus-style text exposition: "# HELP"/"# TYPE" per metric, the
  // merged value unlabeled, and {lane="N"} series when lanes > 1. Histograms
  // render as summaries (quantile 0.5/0.95/0.99 + _sum + _count).
  std::string RenderText() const;
  // One JSON object keyed by metric name (for the benches).
  std::string RenderJson() const;

  size_t lanes() const { return lanes_; }

 private:
  struct Entry;
  size_t lanes_;
  std::vector<std::unique_ptr<Entry>> entries_;
};

}  // namespace moptel

#endif  // MOPEYE_TELEMETRY_METRICS_H_
