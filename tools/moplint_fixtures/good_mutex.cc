// moplint fixture: the annotated wrapper is the sanctioned way to lock; no
// findings expected, including the explicitly suppressed raw mutex.
#include "util/thread_annotations.h"

struct Queue {
  moputil::Mutex mu;
  moputil::CondVar cv;
  int depth MOP_GUARDED_BY(mu) = 0;
  void Bump() {
    moputil::MutexLock lock(mu);
    ++depth;
  }
};

// Interop with an external API that demands the std type, with a recorded
// waiver:
// moplint-allow: raw-mutex
using ExternalLock = std::mutex;
