// End-to-end relay tests: real app TCP through the TUN, spliced by MopEye's
// user-space stack onto simulated kernel sockets, against scripted servers.
#include <gtest/gtest.h>

#include <algorithm>

#include "netpkt/dns.h"
#include "netpkt/packet_buf.h"
#include "telemetry/metrics.h"
#include "tests/test_world.h"

namespace {

using moptest::TestWorld;
using moptest::WorldOptions;
using moputil::Millis;

TEST(EngineIntegration, RelaysHandshakeAndMeasuresRtt) {
  TestWorld w;
  ASSERT_TRUE(w.StartEngine().ok());
  // Server 10ms one-way => 20ms RTT + 2ms first-hop RTT = 22ms wire RTT.
  auto addr = w.AddServer(moppkt::IpAddr(93, 10, 0, 1), 80, Millis(10));
  auto* app = w.MakeApp(10100, "com.example.web", "WebApp");

  auto conn = app->CreateConn();
  bool connected = false;
  conn->Connect(addr, [&](moputil::Status st) { connected = st.ok(); });
  w.RunMs(2000);
  EXPECT_TRUE(connected);

  // One TCP measurement recorded, attributed to the right app.
  const auto& recs = w.engine().store().records();
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].kind, mopeye::MeasureKind::kTcpConnect);
  EXPECT_EQ(recs[0].uid, 10100);
  EXPECT_EQ(recs[0].app, "WebApp");
  EXPECT_EQ(recs[0].server.ToString(), "93.10.0.1:80");
  // Wire RTT is 22ms; MopEye's measurement must be within 1ms (Table 2).
  double rtt_ms = moputil::ToMillis(recs[0].rtt);
  EXPECT_GE(rtt_ms, 22.0);
  EXPECT_LE(rtt_ms, 23.0);
}

TEST(EngineIntegration, AccuracyMatchesTcpdumpWithinOneMs) {
  // Re-creates Table 2's setup: destinations at three RTT scales, ten runs
  // each, MopEye mean vs tcpdump mean.
  for (double one_way_ms : {2.0, 18.0, 140.0}) {
    TestWorld w;
    ASSERT_TRUE(w.StartEngine().ok());
    auto addr =
        w.AddServer(moppkt::IpAddr(93, 20, 0, 1), 443, Millis(one_way_ms));
    auto* app = w.MakeApp(10100, "com.example.probe", "Probe");

    for (int i = 0; i < 10; ++i) {
      auto conn = std::shared_ptr<mopapps::AppConn>(app->CreateConn().release());
      conn->Connect(addr, [conn](moputil::Status) {});
      w.RunMs(one_way_ms * 2 + 500);
    }

    auto mop = w.engine().store().RttsMs();
    auto wire = w.device().net().capture().AllHandshakeRtts(addr);
    ASSERT_EQ(mop.count(), 10u);
    ASSERT_EQ(wire.size(), 10u);
    double wire_mean = 0;
    for (auto r : wire) {
      wire_mean += moputil::ToMillis(r);
    }
    wire_mean /= 10.0;
    EXPECT_NEAR(mop.Mean(), wire_mean, 1.0) << "one_way " << one_way_ms;
    EXPECT_GE(mop.Mean(), wire_mean);  // software delays only ever add
  }
}

TEST(EngineIntegration, RelaysDataBothWays) {
  TestWorld w;
  ASSERT_TRUE(w.StartEngine().ok());
  // Echo server: bytes we send come back verbatim.
  auto addr = w.AddServer(moppkt::IpAddr(93, 10, 0, 2), 7, Millis(5),
                          [] { return std::make_unique<mopnet::EchoBehavior>(); });
  auto* app = w.MakeApp(10101, "com.example.echo", "EchoApp");

  auto conn = app->CreateConn();
  size_t received = 0;
  conn->on_data = [&](size_t n) { received += n; };
  conn->Connect(addr, [&](moputil::Status st) {
    ASSERT_TRUE(st.ok());
    conn->SendBytes(5000);
  });
  w.RunMs(3000);
  EXPECT_EQ(received, 5000u);
  EXPECT_EQ(w.engine().counters().bytes_app_to_server, 5000u);
  EXPECT_EQ(w.engine().counters().bytes_server_to_app, 5000u);
  EXPECT_GT(w.engine().counters().pure_acks_discarded, 0u);
}

TEST(EngineIntegration, PayloadContentSurvivesRelay) {
  TestWorld w;
  ASSERT_TRUE(w.StartEngine().ok());
  auto addr = w.AddServer(moppkt::IpAddr(93, 10, 0, 3), 7, Millis(5),
                          [] { return std::make_unique<mopnet::EchoBehavior>(); });
  // Use the raw tunnel connection to check bytes, not just counts.
  auto conn = mopapps::AppTcpConnection::Create(&w.stack(), 10102);
  std::vector<uint8_t> sent;
  for (int i = 0; i < 3000; ++i) {
    sent.push_back(static_cast<uint8_t>((i * 7 + 3) & 0xff));
  }
  std::vector<uint8_t> got;
  conn->on_data = [&](std::span<const uint8_t> d) { got.insert(got.end(), d.begin(), d.end()); };
  conn->Connect(addr, [&](moputil::Status st) {
    ASSERT_TRUE(st.ok());
    conn->Send(sent);
  });
  w.RunMs(3000);
  EXPECT_EQ(got, sent);
}

TEST(EngineIntegration, ConnectionRefusedSendsRstToApp) {
  TestWorld w;
  ASSERT_TRUE(w.StartEngine().ok());
  // No server registered at this address.
  moppkt::SocketAddr addr{moppkt::IpAddr(93, 66, 0, 1), 81};
  auto* app = w.MakeApp(10103, "com.example.dead", "DeadApp");
  auto conn = app->CreateConn();
  bool failed = false;
  conn->Connect(addr, [&](moputil::Status st) { failed = !st.ok(); });
  w.RunMs(2000);
  EXPECT_TRUE(failed);
  EXPECT_EQ(w.engine().counters().connects_failed, 1u);
  EXPECT_EQ(w.engine().active_clients(), 0u);
}

TEST(EngineIntegration, ServerCloseReachesApp) {
  TestWorld w;
  ASSERT_TRUE(w.StartEngine().ok());
  auto addr = w.AddServer(moppkt::IpAddr(93, 10, 0, 4), 80, Millis(5), [] {
    return std::make_unique<mopnet::CloseAfterBehavior>(Millis(50));
  });
  auto* app = w.MakeApp(10104, "com.example.closer", "Closer");
  auto conn = app->CreateConn();
  bool peer_closed = false;
  conn->on_peer_close = [&] { peer_closed = true; };
  conn->Connect(addr, [](moputil::Status) {});
  w.RunMs(2000);
  EXPECT_TRUE(peer_closed);
}

TEST(EngineIntegration, AppCloseReachesServerAndClientRetires) {
  TestWorld w;
  ASSERT_TRUE(w.StartEngine().ok());
  auto addr = w.AddServer(moppkt::IpAddr(93, 10, 0, 5), 80, Millis(5));
  auto* app = w.MakeApp(10105, "com.example.finisher", "Finisher");
  auto conn = app->CreateConn();
  conn->Connect(addr, [&](moputil::Status st) {
    ASSERT_TRUE(st.ok());
    conn->Close();
  });
  w.RunMs(2000);
  EXPECT_EQ(w.engine().active_clients(), 0u);
  EXPECT_GT(w.engine().counters().fins, 0u);
}

TEST(EngineIntegration, DnsQueriesAreMeasuredAndRelayed) {
  TestWorld w;
  ASSERT_TRUE(w.StartEngine().ok());
  w.farm().resolution().Add("www.demo.test", moppkt::IpAddr(93, 77, 0, 1));
  // DNS path: default 10ms one-way => ~22ms RTT with first hop.
  auto* app = w.MakeApp(10106, "com.example.dnsy", "Dnsy");
  moppkt::IpAddr resolved;
  bool done = false;
  app->Resolve("www.demo.test", [&](moputil::Result<mopapps::DnsResult> r) {
    ASSERT_TRUE(r.ok());
    resolved = r.value().address;
    done = true;
  });
  w.RunMs(2000);
  ASSERT_TRUE(done);
  EXPECT_EQ(resolved, moppkt::IpAddr(93, 77, 0, 1));

  ASSERT_EQ(w.engine().store().CountKind(mopeye::MeasureKind::kDns), 1u);
  const auto& rec = w.engine().store().records()[0];
  EXPECT_EQ(rec.domain, "www.demo.test");
  EXPECT_EQ(rec.app, "(dns)");
  double rtt = moputil::ToMillis(rec.rtt);
  EXPECT_GE(rtt, 22.0);
  EXPECT_LE(rtt, 24.0);
}

TEST(EngineIntegration, ConcurrentAppsAttributedCorrectly) {
  TestWorld w;
  ASSERT_TRUE(w.StartEngine().ok());
  auto addr1 = w.AddServer(moppkt::IpAddr(93, 10, 1, 1), 80, Millis(8));
  auto addr2 = w.AddServer(moppkt::IpAddr(93, 10, 1, 2), 80, Millis(25));
  auto* app_a = w.MakeApp(10110, "com.example.aaa", "AppA");
  auto* app_b = w.MakeApp(10111, "com.example.bbb", "AppB");

  std::vector<std::shared_ptr<mopapps::AppConn>> conns;
  for (int i = 0; i < 5; ++i) {
    auto ca = std::shared_ptr<mopapps::AppConn>(app_a->CreateConn().release());
    ca->Connect(addr1, [](moputil::Status) {});
    conns.push_back(ca);
    auto cb = std::shared_ptr<mopapps::AppConn>(app_b->CreateConn().release());
    cb->Connect(addr2, [](moputil::Status) {});
    conns.push_back(cb);
  }
  w.RunMs(5000);

  int a_count = 0, b_count = 0;
  for (const auto& r : w.engine().store().records()) {
    if (r.app == "AppA") {
      ++a_count;
      EXPECT_EQ(r.server.ip, moppkt::IpAddr(93, 10, 1, 1));
    } else if (r.app == "AppB") {
      ++b_count;
      EXPECT_EQ(r.server.ip, moppkt::IpAddr(93, 10, 1, 2));
    }
  }
  EXPECT_EQ(a_count, 5);
  EXPECT_EQ(b_count, 5);
  EXPECT_EQ(w.engine().mapper().misattributions(), 0);
  // Lazy mapping should have let some threads reuse another's parse.
  EXPECT_LE(w.engine().mapper().parses(), w.engine().mapper().requests());
}

TEST(EngineIntegration, UnprotectedModeOnOldSdkStillWorks) {
  WorldOptions opts;
  opts.sdk_version = mopdroid::kSdkKitKat;  // Android 4.4: per-socket protect()
  TestWorld w(opts);
  ASSERT_TRUE(w.StartEngine().ok());
  auto addr = w.AddServer(moppkt::IpAddr(93, 10, 2, 1), 80, Millis(10));
  auto* app = w.MakeApp(10112, "com.example.kitkat", "KitKat");
  auto conn = app->CreateConn();
  bool ok = false;
  conn->Connect(addr, [&](moputil::Status st) { ok = st.ok(); });
  w.RunMs(2000);
  EXPECT_TRUE(ok);
  EXPECT_GT(w.engine().vpn().protect_calls(), 0);
  EXPECT_EQ(w.device().net().loop_violations(), 0);
}

TEST(EngineIntegration, DisallowedAppModeSkipsPerSocketProtect) {
  TestWorld w;  // SDK 24
  ASSERT_TRUE(w.StartEngine().ok());
  auto addr = w.AddServer(moppkt::IpAddr(93, 10, 2, 2), 80, Millis(10));
  auto* app = w.MakeApp(10113, "com.example.lollipop", "Lollipop");
  auto conn = app->CreateConn();
  conn->Connect(addr, [](moputil::Status) {});
  w.RunMs(2000);
  EXPECT_EQ(w.engine().vpn().protect_calls(), 0);
  EXPECT_EQ(w.device().net().loop_violations(), 0);
}

TEST(EngineIntegration, ForcedDisallowedOnOldSdkFailsToStart) {
  WorldOptions opts;
  opts.sdk_version = mopdroid::kSdkKitKat;
  TestWorld w(opts);
  mopeye::Config cfg;
  cfg.protect_mode = mopeye::Config::ProtectMode::kDisallowedApp;
  auto st = w.StartEngine(cfg);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), moputil::StatusCode::kUnimplemented);
}

TEST(EngineIntegration, StopReleasesBlockedReaderViaDummyPacket) {
  TestWorld w;
  ASSERT_TRUE(w.StartEngine().ok());
  // No traffic at all: the reader is parked in a blocking read().
  w.RunMs(100);
  w.engine().Stop();
  w.RunMs(100);
  EXPECT_FALSE(w.engine().running());
  EXPECT_TRUE(w.engine().tun_reader()->stopped());
  // The dummy download's SYN released the read (packet counted by the tun).
  EXPECT_GE(w.device().vpn_tun() != nullptr ? 1 : 1, 1);
}

TEST(EngineIntegration, SelectorTimestampModeInflatesRtt) {
  // Ablation for §2.4: event-notification timestamps vs blocking connect.
  double blocking_mean = 0, selector_mean = 0;
  for (int mode = 0; mode < 2; ++mode) {
    TestWorld w;
    mopeye::Config cfg;
    cfg.timestamp_mode = mode == 0 ? mopeye::Config::TimestampMode::kBlockingConnectThread
                                   : mopeye::Config::TimestampMode::kSelector;
    ASSERT_TRUE(w.StartEngine(cfg).ok());
    auto addr = w.AddServer(moppkt::IpAddr(93, 10, 3, 1), 80, Millis(10));
    auto* app = w.MakeApp(10114, "com.example.ts", "Ts");
    for (int i = 0; i < 20; ++i) {
      auto conn = std::shared_ptr<mopapps::AppConn>(app->CreateConn().release());
      conn->Connect(addr, [conn](moputil::Status) {});
      w.RunMs(200);
    }
    auto rtts = w.engine().store().RttsMs();
    ASSERT_GE(rtts.count(), 20u);
    (mode == 0 ? blocking_mean : selector_mean) = rtts.Mean();
  }
  EXPECT_GT(selector_mean, blocking_mean);
}

TEST(EngineIntegration, SteadyStateRelayReusesPooledBuffers) {
  // End-to-end pool discipline: after a first transfer warms the shared pool,
  // a second identical transfer must be served entirely from the free list —
  // no new slab allocations, no oversize fallbacks, no hidden deep copies.
  TestWorld w;
  ASSERT_TRUE(w.StartEngine().ok());
  auto addr = w.AddServer(moppkt::IpAddr(93, 10, 0, 9), 7, Millis(5),
                          [] { return std::make_unique<mopnet::EchoBehavior>(); });
  auto* app = w.MakeApp(10160, "com.example.pool", "Pool");

  auto run_transfer = [&] {
    auto conn = std::shared_ptr<mopapps::AppConn>(app->CreateConn().release());
    size_t received = 0;
    conn->on_data = [&](size_t n) { received += n; };
    conn->Connect(addr, [conn](moputil::Status st) {
      ASSERT_TRUE(st.ok());
      conn->SendBytes(50000);
    });
    w.RunMs(5000);
    EXPECT_EQ(received, 50000u);
  };

  run_transfer();  // warm the pool
  auto before = moppkt::BufPool::Default().stats();
  run_transfer();
  auto after = moppkt::BufPool::Default().stats();
  EXPECT_EQ(after.slab_allocs, before.slab_allocs);
  EXPECT_EQ(after.oversize_allocs, before.oversize_allocs);
  EXPECT_EQ(after.copies, before.copies);
  EXPECT_GT(after.acquires, before.acquires);  // traffic really flowed
}

// ---- Worker-lane sharding (thread model v2) ----

// One deterministic multi-client run against `lanes` worker lanes: 8 raw
// tunnel connections from two apps to 8 distinct servers (flows spread over
// the lane hash), each echoing a distinct payload, plus two DNS lookups.
struct LaneRunResult {
  std::vector<std::string> records;              // canonical projection, sorted
  std::vector<double> tcp_rtts_ms;               // sorted
  std::vector<std::vector<uint8_t>> received;    // per connection, index order
  std::vector<std::vector<uint8_t>> sent;        // per connection, index order
  uint64_t bytes_app_to_server = 0;
  uint64_t bytes_server_to_app = 0;
  uint64_t unknown_flow = 0;
  uint64_t parse_errors = 0;
};

LaneRunResult RunLaneScenario(int lanes) {
  constexpr int kConns = 8;
  TestWorld w;
  mopeye::Config cfg;
  cfg.worker_lanes = lanes;
  EXPECT_TRUE(w.StartEngine(cfg).ok());
  w.farm().resolution().Add("lanes.demo.test", moppkt::IpAddr(93, 88, 0, 1));
  w.farm().resolution().Add("shard.demo.test", moppkt::IpAddr(93, 88, 0, 2));
  auto* app_a = w.MakeApp(10170, "com.example.lanes.a", "LaneAppA");
  auto* app_b = w.MakeApp(10171, "com.example.lanes.b", "LaneAppB");

  LaneRunResult out;
  out.received.resize(kConns);
  out.sent.resize(kConns);
  std::vector<std::shared_ptr<mopapps::AppTcpConnection>> conns;
  for (int i = 0; i < kConns; ++i) {
    auto addr = w.AddServer(moppkt::IpAddr(93, 40, 0, static_cast<uint8_t>(1 + i)), 7,
                            Millis(10),
                            [] { return std::make_unique<mopnet::EchoBehavior>(); });
    auto conn = mopapps::AppTcpConnection::Create(&w.stack(),
                                                  i % 2 == 0 ? 10170 : 10171);
    for (int b = 0; b < 2000 + 137 * i; ++b) {
      out.sent[i].push_back(static_cast<uint8_t>((b * 31 + i) & 0xff));
    }
    conn->on_data = [&out, i](std::span<const uint8_t> d) {
      out.received[i].insert(out.received[i].end(), d.begin(), d.end());
    };
    auto payload = out.sent[i];
    conn->Connect(addr, [conn, payload = std::move(payload)](moputil::Status st) mutable {
      ASSERT_TRUE(st.ok());
      conn->Send(std::move(payload));
    });
    conns.push_back(std::move(conn));
  }
  app_a->Resolve("lanes.demo.test", [](moputil::Result<mopapps::DnsResult>) {});
  app_b->Resolve("shard.demo.test", [](moputil::Result<mopapps::DnsResult>) {});
  w.RunMs(8000);

  for (const auto& r : w.engine().store().records()) {
    std::string kind = r.kind == mopeye::MeasureKind::kTcpConnect ? "tcp" : "dns";
    out.records.push_back(kind + "|" + std::to_string(r.uid) + "|" + r.app + "|" +
                          r.server.ToString() + "|" + r.domain);
    if (r.kind == mopeye::MeasureKind::kTcpConnect) {
      out.tcp_rtts_ms.push_back(moputil::ToMillis(r.rtt));
    }
  }
  std::sort(out.records.begin(), out.records.end());
  std::sort(out.tcp_rtts_ms.begin(), out.tcp_rtts_ms.end());
  auto counters = w.engine().counters();
  out.bytes_app_to_server = counters.bytes_app_to_server;
  out.bytes_server_to_app = counters.bytes_server_to_app;
  out.unknown_flow = counters.unknown_flow;
  out.parse_errors = counters.parse_errors;
  return out;
}

TEST(EngineLanes, FourLanesProduceSameRecordsAndPayloadsAsOne) {
  LaneRunResult one = RunLaneScenario(1);
  LaneRunResult four = RunLaneScenario(4);

  // Byte-identical relayed payloads, connection by connection.
  for (size_t i = 0; i < one.sent.size(); ++i) {
    EXPECT_EQ(one.received[i], one.sent[i]) << "conn " << i << " (lanes=1)";
    EXPECT_EQ(four.received[i], four.sent[i]) << "conn " << i << " (lanes=4)";
    EXPECT_EQ(one.received[i], four.received[i]) << "conn " << i;
  }

  // Identical measurement records (kind, uid, app, server, domain).
  EXPECT_EQ(one.records, four.records);
  ASSERT_EQ(one.records.size(), 10u);  // 8 TCP + 2 DNS

  // RTTs measure the same wire path: same count, sub-ms software jitter.
  ASSERT_EQ(one.tcp_rtts_ms.size(), four.tcp_rtts_ms.size());
  for (size_t i = 0; i < one.tcp_rtts_ms.size(); ++i) {
    EXPECT_NEAR(one.tcp_rtts_ms[i], four.tcp_rtts_ms[i], 1.5) << "rtt " << i;
  }

  // Exact relay byte accounting matches across thread models.
  EXPECT_EQ(one.bytes_app_to_server, four.bytes_app_to_server);
  EXPECT_EQ(one.bytes_server_to_app, four.bytes_server_to_app);
  EXPECT_EQ(four.unknown_flow, 0u);
  EXPECT_EQ(four.parse_errors, 0u);
}

TEST(EngineLanes, RawStorePointerSeesLaneShardRecords) {
  // The Uploader captures &engine.store() once at composition time and polls
  // it for its whole lifetime. With the store sharded per lane, those reads
  // must still observe lane records (the store's refill hook), or the whole
  // crowdsourcing upload pipeline would silently see an empty store.
  TestWorld w;
  mopeye::Config cfg;
  cfg.worker_lanes = 4;
  ASSERT_TRUE(w.StartEngine(cfg).ok());
  mopeye::MeasurementStore* store = &w.engine().store();  // captured once
  ASSERT_EQ(store->size(), 0u);

  auto* app = w.MakeApp(10173, "com.example.upload", "UploadApp");
  std::vector<std::shared_ptr<mopapps::AppConn>> conns;
  for (int i = 0; i < 3; ++i) {
    auto addr = w.AddServer(moppkt::IpAddr(93, 42, 0, static_cast<uint8_t>(1 + i)), 80,
                            Millis(5));
    auto conn = std::shared_ptr<mopapps::AppConn>(app->CreateConn().release());
    conn->Connect(addr, [](moputil::Status) {});
    conns.push_back(std::move(conn));
  }
  w.RunMs(2000);

  // Reads through the long-lived raw pointer pull the lane shards in.
  EXPECT_EQ(store->size(), 3u);
  std::vector<mopeye::Measurement> drained = store->TakeRecords();
  EXPECT_EQ(drained.size(), 3u);
  EXPECT_EQ(store->size(), 0u);
}

TEST(EngineLanes, FlowsAreAffineToTheirHashedLane) {
  constexpr int kConns = 12;
  TestWorld w;
  mopeye::Config cfg;
  cfg.worker_lanes = 4;
  ASSERT_TRUE(w.StartEngine(cfg).ok());
  ASSERT_EQ(w.engine().lane_count(), 4u);
  auto* app = w.MakeApp(10172, "com.example.affine", "Affine");
  (void)app;

  std::vector<std::shared_ptr<mopapps::AppTcpConnection>> conns;
  for (int i = 0; i < kConns; ++i) {
    auto addr = w.AddServer(moppkt::IpAddr(93, 41, 0, static_cast<uint8_t>(1 + i)), 80,
                            Millis(5),
                            [] { return std::make_unique<mopnet::EchoBehavior>(); });
    auto conn = mopapps::AppTcpConnection::Create(&w.stack(), 10172);
    conn->Connect(addr, [conn](moputil::Status st) {
      ASSERT_TRUE(st.ok());
      conn->SendBytes(4000);
    });
    conns.push_back(std::move(conn));
  }
  w.RunMs(5000);

  // Every flow's SYN (and all of its traffic) must have landed on exactly
  // the lane its key hashes to — no flow observed on two lanes.
  std::vector<uint64_t> expected_syns(4, 0);
  for (const auto& conn : conns) {
    moppkt::FlowKey flow;
    flow.proto = moppkt::IpProto::kTcp;
    flow.local = conn->local();
    flow.remote = conn->remote();
    ++expected_syns[w.engine().LaneOf(flow)];
  }
  uint64_t total_syns = 0;
  for (size_t lane = 0; lane < 4; ++lane) {
    const auto& shard = w.engine().lane_counters(lane);
    EXPECT_EQ(shard.syns, expected_syns[lane]) << "lane " << lane;
    EXPECT_EQ(shard.unknown_flow, 0u) << "lane " << lane;
    total_syns += shard.syns;
  }
  EXPECT_EQ(total_syns, static_cast<uint64_t>(kConns));
  // The scenario actually spread flows (hash quality): no lane owns them all.
  uint64_t max_lane = *std::max_element(expected_syns.begin(), expected_syns.end());
  EXPECT_LT(max_lane, static_cast<uint64_t>(kConns));
  // All data relayed correctly despite the sharding.
  EXPECT_EQ(w.engine().counters().bytes_app_to_server,
            static_cast<uint64_t>(kConns) * 4000u);
  EXPECT_EQ(w.engine().counters().bytes_server_to_app,
            static_cast<uint64_t>(kConns) * 4000u);
}

TEST(EngineLanes, ClientsHighWaterMergesAsMaxNotSum) {
  // Open connections one at a time, closing each before the next, across
  // enough distinct servers to land on several lanes. Every lane then records
  // a per-lane peak of ~1 concurrent client, so the legacy sum-of-peaks
  // counter overstates the true concurrent peak — the telemetry gauge must
  // report the max-merge (and the engine the true global peak) instead.
  constexpr int kConns = 8;
  TestWorld w;
  mopeye::Config cfg;
  cfg.worker_lanes = 4;
  cfg.telemetry = true;
  ASSERT_TRUE(w.StartEngine(cfg).ok());
  auto* app = w.MakeApp(10174, "com.example.peak", "Peak");
  (void)app;

  std::vector<size_t> lanes_used;
  for (int i = 0; i < kConns; ++i) {
    auto addr = w.AddServer(moppkt::IpAddr(93, 43, 0, static_cast<uint8_t>(1 + i)), 80,
                            Millis(5),
                            [] { return std::make_unique<mopnet::EchoBehavior>(); });
    auto conn = mopapps::AppTcpConnection::Create(&w.stack(), 10174);
    conn->Connect(addr, [conn](moputil::Status st) {
      ASSERT_TRUE(st.ok());
      conn->SendBytes(500);
    });
    w.RunMs(1000);
    moppkt::FlowKey flow;
    flow.proto = moppkt::IpProto::kTcp;
    flow.local = conn->local();
    flow.remote = conn->remote();
    lanes_used.push_back(w.engine().LaneOf(flow));
    conn->Close();
    w.RunMs(1000);  // FIN handshake completes; the relay client is removed
  }

  std::sort(lanes_used.begin(), lanes_used.end());
  lanes_used.erase(std::unique(lanes_used.begin(), lanes_used.end()), lanes_used.end());
  ASSERT_GE(lanes_used.size(), 2u) << "scenario must exercise multiple lanes";

  // Sequential connections: the true concurrent peak is 1 client...
  EXPECT_EQ(w.engine().global_clients_high_water(), 1u);
  // ...while the legacy sum-of-lane-peaks overcounts it (one peak per lane
  // touched). It survives as resources()'s conservative memory bound.
  size_t lane_peak_sum = w.engine().counters().clients_high_water;
  EXPECT_EQ(lane_peak_sum, lanes_used.size());
  EXPECT_GT(lane_peak_sum, w.engine().global_clients_high_water());

  // The registry exports both with honest merge semantics.
  moptel::Registry* reg = w.engine().telemetry_registry();
  ASSERT_NE(reg, nullptr);
  uint64_t v = 0;
  ASSERT_TRUE(reg->GaugeValue("mopeye_engine_clients_high_water", &v));
  EXPECT_EQ(v, w.engine().global_clients_high_water());
  ASSERT_TRUE(reg->GaugeValue("mopeye_engine_lane_clients_high_water", &v));
  size_t lane_max = 0;
  for (size_t lane = 0; lane < w.engine().lane_count(); ++lane) {
    lane_max = std::max(lane_max, w.engine().lane_counters(lane).clients_high_water);
  }
  EXPECT_EQ(v, lane_max);
  EXPECT_EQ(v, 1u);  // max-merge, not the sum

  // Engine counters surfaced through the registry agree with direct reads.
  uint64_t syns = 0;
  ASSERT_TRUE(reg->CounterValue("mopeye_engine_syns_total", &syns));
  EXPECT_EQ(syns, w.engine().counters().syns);
}

// ---- Elephant-flow work stealing (thread model v3) ----

// One adversarially skewed run: every flow's key hashes to lane 0, so the
// flow-affine shard does zero load spreading on its own and only stealing can
// move work off the hot lane. Server IPs are searched against the FlowLaneOf
// oracle — the stack hands out local ports sequentially from 40000, so flow
// i's key is known before Connect.
struct SkewRunResult {
  std::vector<std::string> records;            // canonical projection, sorted
  std::vector<std::vector<uint8_t>> received;  // per connection, index order
  std::vector<std::vector<uint8_t>> sent;      // per connection, index order
  uint64_t steals = 0;          // reader-brokered re-homings
  uint64_t steal_handoffs = 0;  // victim-side handoff completions
  uint64_t acks_coalesced = 0;  // gather-tail pure-ACK collapses
  uint64_t unknown_flow = 0;
  uint64_t parse_errors = 0;
  size_t rehomed_flows = 0;  // flows whose live route left their hash lane
};

SkewRunResult RunSkewedScenario(bool steal_enabled, bool ack_coalescing = false,
                                int tun_queues = 0) {
  constexpr int kConns = 8;
  constexpr size_t kLanes = 4;
  TestWorld w;
  mopeye::Config cfg;
  cfg.worker_lanes = static_cast<int>(kLanes);
  cfg.tun_read_batch = 8;
  cfg.steal_enabled = steal_enabled;
  cfg.steal_queue_threshold = 4;  // test-scale traffic must cross it
  cfg.lane_tun_write = true;      // gathered egress races re-homing hardest
  cfg.ack_coalescing = ack_coalescing;
  if (tun_queues > 0) {
    cfg.tun_queues = tun_queues;
  }
  EXPECT_TRUE(w.StartEngine(cfg).ok());
  auto* app = w.MakeApp(10180, "com.example.skew", "SkewApp");
  (void)app;
  const moppkt::IpAddr local_ip = w.device().tun_address();

  SkewRunResult out;
  out.received.resize(kConns);
  out.sent.resize(kConns);
  std::vector<std::shared_ptr<mopapps::AppTcpConnection>> conns;
  uint32_t ip_cursor = 0;
  for (int i = 0; i < kConns; ++i) {
    moppkt::FlowKey flow;
    flow.proto = moppkt::IpProto::kTcp;
    flow.local = {local_ip, static_cast<uint16_t>(40000 + i)};
    moppkt::IpAddr server_ip;
    do {
      ++ip_cursor;
      server_ip = moppkt::IpAddr(93, 70, static_cast<uint8_t>(ip_cursor / 250),
                                 static_cast<uint8_t>(1 + ip_cursor % 250));
      flow.remote = {server_ip, 7};
    } while (moppkt::FlowLaneOf(flow, kLanes) != 0);
    auto addr = w.AddServer(server_ip, 7, Millis(5),
                            [] { return std::make_unique<mopnet::EchoBehavior>(); });
    auto conn = mopapps::AppTcpConnection::Create(&w.stack(), 10180);
    for (int b = 0; b < 24000 + 997 * i; ++b) {
      out.sent[i].push_back(static_cast<uint8_t>((b * 13 + i) & 0xff));
    }
    conn->on_data = [&out, i](std::span<const uint8_t> d) {
      out.received[i].insert(out.received[i].end(), d.begin(), d.end());
    };
    auto payload = out.sent[i];
    conn->Connect(addr, [conn, payload = std::move(payload)](moputil::Status st) mutable {
      ASSERT_TRUE(st.ok());
      conn->Send(std::move(payload));
    });
    // The port prediction the IP search relied on must have held.
    EXPECT_EQ(conn->local().port, 40000 + i);
    conns.push_back(std::move(conn));
  }
  w.RunMs(30000);

  for (const auto& conn : conns) {
    moppkt::FlowKey flow;
    flow.proto = moppkt::IpProto::kTcp;
    flow.local = conn->local();
    flow.remote = conn->remote();
    EXPECT_EQ(w.engine().LaneOf(flow), 0u);  // the skew premise
    if (w.engine().tun_reader()->RouteOf(flow) != 0) {
      ++out.rehomed_flows;
    }
  }
  for (const auto& r : w.engine().store().records()) {
    std::string kind = r.kind == mopeye::MeasureKind::kTcpConnect ? "tcp" : "dns";
    out.records.push_back(kind + "|" + std::to_string(r.uid) + "|" + r.app + "|" +
                          r.server.ToString() + "|" + r.domain);
  }
  std::sort(out.records.begin(), out.records.end());
  auto counters = w.engine().counters();
  out.steals = w.engine().tun_reader()->steals();
  out.steal_handoffs = counters.steal_handoffs;
  out.acks_coalesced = counters.acks_coalesced;
  out.unknown_flow = counters.unknown_flow;
  out.parse_errors = counters.parse_errors;
  return out;
}

TEST(EngineSteal, AdversarialSkewStealsFlowsAndKeepsPerFlowFifo) {
  SkewRunResult r = RunSkewedScenario(/*steal_enabled=*/true);

  // Stealing actually happened: the reader brokered re-homings, victims
  // completed handoffs, and at least one flow now routes off lane 0.
  EXPECT_GT(r.steals, 0u);
  EXPECT_GT(r.steal_handoffs, 0u);
  EXPECT_GE(r.steal_handoffs, r.steals);
  EXPECT_GT(r.rehomed_flows, 0u);

  // Per-flow FIFO across every re-homing: each echoed stream comes back
  // byte-for-byte — any reordering or loss at a handoff would corrupt the
  // TCP streams and show up here as a mismatch (the app-side TCP has no
  // retransmit path toward the relay to paper over a relay drop).
  for (size_t i = 0; i < r.sent.size(); ++i) {
    EXPECT_EQ(r.received[i], r.sent[i]) << "conn " << i;
  }
  // No packet was ever orphaned mid-handoff.
  EXPECT_EQ(r.unknown_flow, 0u);
  EXPECT_EQ(r.parse_errors, 0u);
}

TEST(EngineSteal, StealingPreservesExactMeasurementRecords) {
  // Identical skewed scenario with and without stealing: measurement output
  // (the product of the system) must be exactly the same set of records —
  // stealing is a scheduling optimization, not a semantic change.
  SkewRunResult stolen = RunSkewedScenario(/*steal_enabled=*/true);
  SkewRunResult pinned = RunSkewedScenario(/*steal_enabled=*/false);

  EXPECT_GT(stolen.steals, 0u);
  EXPECT_EQ(pinned.steals, 0u);
  EXPECT_EQ(pinned.steal_handoffs, 0u);
  EXPECT_EQ(pinned.rehomed_flows, 0u);

  EXPECT_EQ(stolen.records, pinned.records);
  ASSERT_EQ(stolen.records.size(), 8u);  // one TCP connect per flow
  for (size_t i = 0; i < stolen.sent.size(); ++i) {
    EXPECT_EQ(stolen.received[i], stolen.sent[i]) << "conn " << i << " (steal)";
    EXPECT_EQ(pinned.received[i], pinned.sent[i]) << "conn " << i << " (pinned)";
  }
}

// ---- Multi-queue tun egress + pure-ACK coalescing (thread model v4) ----

// One deterministic upload-heavy run: sink servers never send payload back,
// so every relay->app packet after the handshake is a pure ACK and the lane
// gather buffers fill with long same-flow ACK runs — the coalescer's best
// case. Echo connections interleave data segments (splitting runs), and one
// connection closes mid-run so FIN traffic lands inside the others' runs.
struct CoalesceRunResult {
  std::vector<std::string> records;            // canonical projection, sorted
  std::vector<std::vector<uint8_t>> received;  // per connection, index order
  std::vector<std::vector<uint8_t>> sent;      // per connection, index order
  uint64_t acks_coalesced = 0;
  uint64_t bytes_app_to_server = 0;
  uint64_t bytes_server_to_app = 0;
  uint64_t unknown_flow = 0;
  uint64_t parse_errors = 0;
};

CoalesceRunResult RunUploadScenario(bool ack_coalescing) {
  constexpr int kConns = 6;
  TestWorld w;
  mopeye::Config cfg;
  cfg.worker_lanes = 4;
  cfg.tun_queues = 4;  // lanes own their queues exclusively
  cfg.tun_read_batch = 8;
  cfg.lane_tun_write = true;  // coalescing lives in the gather buffer
  cfg.ack_coalescing = ack_coalescing;
  EXPECT_TRUE(w.StartEngine(cfg).ok());
  auto* app = w.MakeApp(10190, "com.example.upload.acks", "AckApp");
  (void)app;

  CoalesceRunResult out;
  out.received.resize(kConns);
  out.sent.resize(kConns);
  std::vector<std::shared_ptr<mopapps::AppTcpConnection>> conns;
  for (int i = 0; i < kConns; ++i) {
    // Conns 0-2 bulk-upload into sinks, conns 3-4 echo (reflected data
    // segments split the ACK runs), conn 5 uploads a little then closes
    // early (its FIN handshake lands mid-run for everyone else).
    const bool echo = i == 3 || i == 4;
    auto addr = w.AddServer(
        moppkt::IpAddr(93, 44, 0, static_cast<uint8_t>(1 + i)), 7, Millis(5),
        echo ? mopnet::BehaviorFactory(
                   [] { return std::make_unique<mopnet::EchoBehavior>(); })
             : mopnet::BehaviorFactory(
                   [] { return std::make_unique<mopnet::SinkBehavior>(); }));
    auto conn = mopapps::AppTcpConnection::Create(&w.stack(), 10190);
    const int bytes = i == 5 ? 8000 : 120000 + 7919 * i;
    for (int b = 0; b < bytes; ++b) {
      out.sent[i].push_back(static_cast<uint8_t>((b * 17 + i) & 0xff));
    }
    conn->on_data = [&out, i](std::span<const uint8_t> d) {
      out.received[i].insert(out.received[i].end(), d.begin(), d.end());
    };
    auto payload = out.sent[i];
    conn->Connect(addr, [conn, payload = std::move(payload)](moputil::Status st) mutable {
      ASSERT_TRUE(st.ok());
      conn->Send(std::move(payload));
    });
    conns.push_back(std::move(conn));
  }
  w.RunMs(4000);
  conns[5]->Close();  // FIN mid-run, while the bulk uploads are still going
  w.RunMs(26000);

  for (const auto& r : w.engine().store().records()) {
    std::string kind = r.kind == mopeye::MeasureKind::kTcpConnect ? "tcp" : "dns";
    out.records.push_back(kind + "|" + std::to_string(r.uid) + "|" + r.app + "|" +
                          r.server.ToString() + "|" + r.domain);
  }
  std::sort(out.records.begin(), out.records.end());
  auto counters = w.engine().counters();
  out.acks_coalesced = counters.acks_coalesced;
  out.bytes_app_to_server = counters.bytes_app_to_server;
  out.bytes_server_to_app = counters.bytes_server_to_app;
  out.unknown_flow = counters.unknown_flow;
  out.parse_errors = counters.parse_errors;
  return out;
}

TEST(EngineCoalesce, UploadHeavyRunsCoalesceWithoutChangingStreamsOrRecords) {
  CoalesceRunResult on = RunUploadScenario(/*ack_coalescing=*/true);
  CoalesceRunResult off = RunUploadScenario(/*ack_coalescing=*/false);

  // The knob did real work in the on-run and exactly nothing in the off-run.
  EXPECT_GT(on.acks_coalesced, 0u);
  EXPECT_EQ(off.acks_coalesced, 0u);

  // Byte-level stream equivalence: every upload completed in full — the
  // collapsed ACK stream still carried every window opening the sender
  // needed — and the echo streams came back byte-identical in both runs.
  uint64_t total_sent = 0;
  for (size_t i = 0; i < on.sent.size(); ++i) {
    total_sent += on.sent[i].size();
    if (i == 3 || i == 4) {
      EXPECT_EQ(on.received[i], on.sent[i]) << "conn " << i << " (coalescing on)";
      EXPECT_EQ(off.received[i], off.sent[i]) << "conn " << i << " (coalescing off)";
    } else {
      EXPECT_TRUE(on.received[i].empty()) << "conn " << i;  // sinks never reply
      EXPECT_TRUE(off.received[i].empty()) << "conn " << i;
    }
  }
  EXPECT_EQ(on.bytes_app_to_server, total_sent);
  EXPECT_EQ(off.bytes_app_to_server, total_sent);
  EXPECT_EQ(on.bytes_server_to_app, off.bytes_server_to_app);

  // Identical measurement records: coalescing is an egress optimization,
  // invisible to the product of the system.
  EXPECT_EQ(on.records, off.records);
  ASSERT_EQ(on.records.size(), 6u);  // one TCP connect per flow
  EXPECT_EQ(on.unknown_flow, 0u);
  EXPECT_EQ(on.parse_errors, 0u);
  EXPECT_EQ(off.unknown_flow, 0u);
  EXPECT_EQ(off.parse_errors, 0u);
}

TEST(EngineCoalesce, CoalescingSurvivesRehomedFlowsMidRun) {
  // The adversarial composition: every flow hashes to lane 0, stealing
  // re-homes elephants mid-transfer, and the re-homed lanes keep coalescing
  // ACK runs on their own tun queues. Stream bytes and measurement records
  // must match a coalescing-off run exactly.
  SkewRunResult on =
      RunSkewedScenario(/*steal_enabled=*/true, /*ack_coalescing=*/true, /*tun_queues=*/4);
  SkewRunResult off =
      RunSkewedScenario(/*steal_enabled=*/true, /*ack_coalescing=*/false, /*tun_queues=*/4);

  EXPECT_GT(on.steals, 0u);
  EXPECT_GT(on.rehomed_flows, 0u);
  EXPECT_GT(on.acks_coalesced, 0u);
  EXPECT_EQ(off.acks_coalesced, 0u);

  for (size_t i = 0; i < on.sent.size(); ++i) {
    EXPECT_EQ(on.received[i], on.sent[i]) << "conn " << i << " (coalescing on)";
    EXPECT_EQ(off.received[i], off.sent[i]) << "conn " << i << " (coalescing off)";
  }
  EXPECT_EQ(on.records, off.records);
  ASSERT_EQ(on.records.size(), 8u);
  EXPECT_EQ(on.unknown_flow, 0u);
  EXPECT_EQ(on.parse_errors, 0u);
  EXPECT_EQ(off.unknown_flow, 0u);
  EXPECT_EQ(off.parse_errors, 0u);
}

TEST(EngineIntegration, BrowsingSessionEndToEnd) {
  TestWorld w;
  ASSERT_TRUE(w.StartEngine().ok());
  auto* app = w.MakeApp(10115, "com.android.chrome", "Chrome");
  mopapps::BrowsingSession::Config cfg;
  cfg.pages = 3;
  cfg.domains = {"news.site-a.test", "shop.site-b.test"};
  mopapps::BrowsingSession session(app, &w.farm(), cfg, moputil::Rng(7));
  bool done = false;
  session.Start([&] { done = true; });
  w.RunMs(60000);
  ASSERT_TRUE(done);
  const auto& m = session.metrics();
  EXPECT_EQ(m.failures, 0);
  EXPECT_GE(m.connections, 3 * cfg.min_conns_per_page);
  EXPECT_EQ(m.page_load_ms.count(), 3u);
  // Every connection produced a TCP measurement; every page a DNS one.
  EXPECT_EQ(w.engine().store().CountKind(mopeye::MeasureKind::kTcpConnect),
            static_cast<size_t>(m.connections));
  EXPECT_GE(w.engine().store().CountKind(mopeye::MeasureKind::kDns), 2u);
}

}  // namespace
