#include "android/package_manager.h"

namespace mopdroid {

bool PackageManager::Install(int uid, const std::string& package, const std::string& label) {
  if (by_uid_.count(uid) > 0 || by_name_.count(package) > 0) {
    return false;
  }
  by_uid_[uid] = PackageInfo{uid, package, label};
  by_name_[package] = uid;
  return true;
}

void PackageManager::Uninstall(int uid) {
  auto it = by_uid_.find(uid);
  if (it == by_uid_.end()) {
    return;
  }
  by_name_.erase(it->second.package);
  by_uid_.erase(it);
}

std::optional<PackageInfo> PackageManager::GetPackageForUid(int uid) const {
  auto it = by_uid_.find(uid);
  if (it == by_uid_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::optional<PackageInfo> PackageManager::GetPackageByName(const std::string& package) const {
  auto it = by_name_.find(package);
  if (it == by_name_.end()) {
    return std::nullopt;
  }
  return GetPackageForUid(it->second);
}

std::vector<PackageInfo> PackageManager::InstalledPackages() const {
  std::vector<PackageInfo> out;
  out.reserve(by_uid_.size());
  for (const auto& [uid, info] : by_uid_) {
    out.push_back(info);
  }
  return out;
}

}  // namespace mopdroid
