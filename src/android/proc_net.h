// The /proc/net/tcp|tcp6|udp|udp6 pseudo-files and their parse cost.
//
// These four files are the only socket-to-app mapping source available to an
// unprivileged app (paper §2.2): each row carries the connection's addresses
// and the owning app's uid. Rendering follows the real kernel format
// (little-endian hex addresses), and the parser here is the same code the
// engine's mapper runs. Parsing is priced by a calibrated cost model because
// the paper's whole §3.3 (lazy mapping) exists to dodge that cost.
#ifndef MOPEYE_ANDROID_PROC_NET_H_
#define MOPEYE_ANDROID_PROC_NET_H_

#include <memory>
#include <string>
#include <vector>

#include "net/conn_table.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/time.h"

namespace mopdroid {

struct ProcNetEntry {
  moppkt::SocketAddr local;
  moppkt::SocketAddr remote;
  mopnet::ConnState state = mopnet::ConnState::kEstablished;
  int uid = 0;
};

// Cost model for one full parse of the proc files, as a function of the
// number of rows. Calibrated against Fig. 5(a): on a busy phone, >75% of
// parses cost >= 5 ms and >10% cost >= 15 ms.
struct ProcParseCostModel {
  // Fixed syscall/open/read overhead per parse.
  std::shared_ptr<moputil::DelayModel> base;
  // Per-row tokenize/convert cost.
  std::shared_ptr<moputil::DelayModel> per_row;
  // Occasional scheduler/GC spike added on top.
  std::shared_ptr<moputil::DelayModel> spike;

  static ProcParseCostModel Default();

  moputil::SimDuration Sample(size_t rows, moputil::Rng& rng) const;
};

class ProcNet {
 public:
  explicit ProcNet(const mopnet::KernelConnTable* table);

  // Renders the pseudo-file text for `proto` in the kernel's format.
  std::string Render(moppkt::IpProto proto) const;
  size_t RowCount(moppkt::IpProto proto) const;

  const ProcParseCostModel& cost_model() const { return cost_; }
  void set_cost_model(ProcParseCostModel m) { cost_ = std::move(m); }
  // Samples the time one full read+parse of tcp6|tcp (or udp6|udp) takes.
  moputil::SimDuration SampleParseCost(moppkt::IpProto proto, moputil::Rng& rng) const;

 private:
  const mopnet::KernelConnTable* table_;
  ProcParseCostModel cost_;
};

// Parses pseudo-file text back into entries. This is the engine-side parser;
// it must round-trip with ProcNet::Render (tested property-style).
moputil::Result<std::vector<ProcNetEntry>> ParseProcNet(const std::string& text);

}  // namespace mopdroid

#endif  // MOPEYE_ANDROID_PROC_NET_H_
