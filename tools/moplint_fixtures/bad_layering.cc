// moplint fixture: scanned as src/netpkt/bad_layering.cc — netpkt reaching up
// into net/ and core/ MUST be flagged (twice).
#include "net/socket.h"
#include "core/engine.h"
#include "util/logging.h"
