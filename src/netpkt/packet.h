// Top-level datagram classification: what MopEye's MainWorker does first with
// every packet read from the tunnel (paper §2.2 "packet parsing and mapping").
#ifndef MOPEYE_NETPKT_PACKET_H_
#define MOPEYE_NETPKT_PACKET_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "netpkt/ip.h"
#include "netpkt/tcp.h"
#include "netpkt/udp.h"
#include "util/hash.h"
#include "util/status.h"

namespace moppkt {

// A TCP/UDP connection identity as seen from the initiating side.
struct FlowKey {
  IpProto proto = IpProto::kTcp;
  SocketAddr local;
  SocketAddr remote;

  bool operator==(const FlowKey& o) const {
    return proto == o.proto && local == o.local && remote == o.remote;
  }
  std::string ToString() const;
};

struct FlowKeyHash {
  // splitmix64 finalizer (moputil::Mix64) — a full-avalanche mixer, unlike
  // the previous xor/multiply which collided heavily for same-subnet
  // address pairs (only the low port bits varied the result).
  static uint64_t Mix(uint64_t x) { return moputil::Mix64(x); }
  size_t operator()(const FlowKey& k) const {
    uint64_t a = (static_cast<uint64_t>(k.local.ip.value()) << 16) | k.local.port;
    uint64_t b = (static_cast<uint64_t>(k.remote.ip.value()) << 16) | k.remote.port;
    uint64_t h = Mix(a ^ (static_cast<uint64_t>(k.proto) << 56));
    return static_cast<size_t>(Mix(h ^ b));
  }
};

// The worker lane that owns `key` when the relay is sharded over `lanes`
// lanes. The single definition of the routing rule: the TunReader's
// dispatch, the engine's introspection accessor, and any test oracle must
// all agree, so they all call this.
inline size_t FlowLaneOf(const FlowKey& key, size_t lanes) {
  return FlowKeyHash{}(key) % lanes;
}

// A fully classified datagram: IP header plus the parsed L4 view. All views
// (`raw`, `tcp->payload`, `udp->payload`) reference the buffer handed to
// ParsePacket — typically a pooled PacketBuf slab — and are valid only while
// that buffer lives. ParsedPacket owns nothing: parsing allocates nothing
// and copies nothing.
struct ParsedPacket {
  std::span<const uint8_t> raw;
  Ipv4Header ip;
  std::optional<TcpSegment> tcp;
  std::optional<UdpDatagram> udp;

  bool is_tcp() const { return tcp.has_value(); }
  bool is_udp() const { return udp.has_value(); }

  // Flow key from the sender's perspective (src = local).
  FlowKey flow() const;
};

// Parses an IPv4 datagram and its TCP/UDP payload, verifying checksums.
// Non-TCP/UDP protocols yield a packet with neither view set. The caller
// keeps `datagram`'s backing bytes alive for as long as the result's views
// are used.
moputil::Result<ParsedPacket> ParsePacket(std::span<const uint8_t> datagram);

// Reads just the flow identity (proto + addresses + ports) of a TCP/UDP
// datagram: the minimum the TunReader needs to classify a packet onto its
// owning worker lane. No checksum verification, no payload parsing, no
// allocation — full validation still happens on the owning lane via
// ParsePacket. Fails on truncated headers and yields a port-less key for
// non-TCP/UDP protocols.
moputil::Result<FlowKey> PeekFlow(std::span<const uint8_t> datagram);

}  // namespace moppkt

#endif  // MOPEYE_NETPKT_PACKET_H_
