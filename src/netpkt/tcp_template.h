// Per-flow prototype datagram for the relay's steady-state emissions.
//
// Every packet MopEye sends toward an app on one connection shares its
// addresses, ports, TTL, and (after the SYN/ACK) carries no TCP options: only
// seq/ack/flags/window/ip_id and the payload vary. Rebuilding the 40 bytes of
// headers and re-summing their constant words per packet is wasted work, so
// the engine keeps one TcpPacketTemplate per TCP client: the header image and
// the one's-complement sum of its constant words are computed once, and each
// Emit() memcpys the image, patches the mutable fields, derives the IP header
// checksum by RFC 1624 incremental update, and folds only the mutable words
// plus the payload into the TCP checksum. Output is byte-identical to
// BuildTcpDatagram for the option-less segment shape.
#ifndef MOPEYE_NETPKT_TCP_TEMPLATE_H_
#define MOPEYE_NETPKT_TCP_TEMPLATE_H_

#include <cstdint>
#include <span>

#include "netpkt/tcp.h"

namespace moppkt {

class TcpPacketTemplate {
 public:
  // Fixed per-flow fields. For relay emissions toward the app, src is the
  // remote (server) endpoint and dst the app's tunnel address.
  TcpPacketTemplate(const IpAddr& src, const IpAddr& dst, uint16_t src_port,
                    uint16_t dst_port, uint8_t ttl = 64);

  // True if `spec` fits the template (no TCP options). SYN/ACKs carry an MSS
  // option and take the general builder instead — once per connection.
  static bool Covers(const TcpSegmentSpec& spec) {
    return !spec.mss.has_value() && !spec.window_scale.has_value();
  }

  // Writes the full 40-byte-header datagram into `out` (capacity >= 40 +
  // payload.size()). Returns the datagram size. No allocation.
  size_t Emit(uint32_t seq, uint32_t ack, TcpFlags flags, uint16_t window,
              uint16_t ip_id, std::span<const uint8_t> payload,
              std::span<uint8_t> out) const;

  // Spec-shaped convenience for engine call sites. Requires Covers(spec).
  size_t EmitSpec(const TcpSegmentSpec& spec, uint16_t ip_id,
                  std::span<uint8_t> out) const;

 private:
  uint8_t hdr_[40];         // header image: mutable fields zeroed
  uint16_t ip_csum_base_;   // finished IP checksum with total_length=0, id=0
  uint32_t tcp_sum_const_;  // pseudo header (zero length) + ports
};

}  // namespace moppkt

#endif  // MOPEYE_NETPKT_TCP_TEMPLATE_H_
