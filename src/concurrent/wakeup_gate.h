// WakeupGate: the Selector.wakeup() coalescing point (§3.2).
//
// Many threads (TunReader, socket callbacks) signal one waiting main thread.
// Signals are coalesced: N wakeup() calls before the waiter runs produce one
// wake, exactly like java.nio.Selector. Used by real-thread tests/benches.
//
// pending_ and coalesced_ are MOP_GUARDED_BY(mu_); the wait is an explicit
// while-not-pending loop so Clang's -Wthread-safety can verify every access.
#ifndef MOPEYE_CONCURRENT_WAKEUP_GATE_H_
#define MOPEYE_CONCURRENT_WAKEUP_GATE_H_

#include <chrono>
#include <cstdint>

#include "util/thread_annotations.h"

namespace mopcc {

class WakeupGate {
 public:
  // Signals the waiter; cheap and idempotent while a signal is pending.
  void Wakeup() MOP_EXCLUDES(mu_) {
    {
      moputil::MutexLock lock(mu_);
      if (pending_) {
        ++coalesced_;
        return;
      }
      pending_ = true;
    }
    cv_.NotifyOne();
  }

  // Blocks until signaled or the timeout elapses. Returns true if signaled.
  bool Wait(std::chrono::nanoseconds timeout) MOP_EXCLUDES(mu_) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    moputil::MutexLock lock(mu_);
    while (!pending_) {
      if (!cv_.WaitUntil(mu_, deadline)) {
        break;  // timed out; pending_ may still have been set by a late racer
      }
    }
    bool signaled = pending_;
    pending_ = false;
    return signaled;
  }

  uint64_t coalesced() const MOP_EXCLUDES(mu_) {
    moputil::MutexLock lock(mu_);
    return coalesced_;
  }

 private:
  mutable moputil::Mutex mu_;
  moputil::CondVar cv_;
  bool pending_ MOP_GUARDED_BY(mu_) = false;
  uint64_t coalesced_ MOP_GUARDED_BY(mu_) = 0;
};

}  // namespace mopcc

#endif  // MOPEYE_CONCURRENT_WAKEUP_GATE_H_
