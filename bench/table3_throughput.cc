// Table 3: download/upload throughput overhead of MopEye vs Haystack on a
// ~25 Mbps link, measured by an Ookla-style speedtest app.
//
// With --lanes=N the binary instead runs the worker-lane relay-scaling
// sweep: many concurrent bulk-download clients on a fat (10 Gbps) link, so
// the engine — not the link — is the bottleneck, and the aggregate relayed
// throughput shows how the sharded thread model scales. The default output
// (no --lanes) is byte-identical to the checked-in baseline.
#include <algorithm>
#include <memory>
#include <vector>

#include "baselines/presets.h"
#include "bench/bench_util.h"
#include "telemetry/metrics.h"
#include "tests/test_world.h"

namespace {

struct RunResult {
  double down = 0;
  double up = 0;
};

// ---- Worker-lane scaling sweep (--lanes=N) ----

struct LaneSweepResult {
  double mbps = 0;          // aggregate relayed download throughput
  uint64_t bytes = 0;       // total bytes delivered to apps
  double window_s = 0;      // first-data -> last-data window
  int incomplete = 0;       // clients that did not finish (should be 0)
  std::string stage_table;  // per-lane relay stage timing (telemetry)
  std::string queue_table;  // per-tun-queue flush timing (tun_queues > 1)
  uint64_t acks_coalesced = 0;  // pure ACKs collapsed in gather buffers
  std::string stage_json;   // full registry JSON (tools/perf_gate.py input)
};

// Relay stage histograms registered by the engine when Config::telemetry is
// on; the sweep reads them per lane so a skewed lane shows up as a skewed
// column, not averaged away in the merge.
constexpr struct {
  const char* metric;
  const char* label;
} kStages[] = {
    {"mopeye_relay_stage_tun_read_ms", "tun read"},
    {"mopeye_relay_stage_dispatch_ms", "lane dispatch"},
    {"mopeye_relay_stage_parse_ms", "parse"},
    {"mopeye_relay_stage_tcp_ms", "tcp state"},
    {"mopeye_relay_stage_socket_write_ms", "socket write"},
    {"mopeye_relay_stage_socket_read_ms", "socket read"},
    {"mopeye_relay_stage_dns_ms", "dns"},
    {"mopeye_relay_stage_tun_write_ms", "tun write"},
};

std::string RenderStageBreakdown(const moptel::Registry* reg, int lanes) {
  std::vector<std::string> header{"stage"};
  for (int l = 0; l < lanes; ++l) {
    header.push_back("lane " + std::to_string(l) + " p50 (n)");
  }
  moputil::Table t(header);
  for (const auto& stage : kStages) {
    const moptel::Histogram* h = reg->FindHistogram(stage.metric);
    if (h == nullptr) {
      continue;
    }
    std::vector<std::string> row{stage.label};
    for (int l = 0; l < lanes; ++l) {
      uint64_t n = h->LaneCount(static_cast<size_t>(l));
      if (n == 0) {
        row.push_back("-");
      } else {
        row.push_back(mopbench::Num(h->LaneQuantile(static_cast<size_t>(l), 50.0) * 1000.0) +
                      "us (" + std::to_string(n) + ")");
      }
    }
    t.AddRow(std::move(row));
  }
  return t.Render();
}

// Per-queue tun flush breakdown (thread model v4): one row per tun queue,
// fed by the mopeye_tun_queue_flush_q<q>_ms histograms the engine registers
// when Config::tun_queues > 1. The p95 column is the number the old shared
// fd could not keep down — the whole point of the sharding.
std::string RenderQueueBreakdown(const moptel::Registry* reg, int tun_queues) {
  moputil::Table t({"tun queue", "flushes", "p50", "p95", "p99"});
  bool any = false;
  for (int q = 0; q < tun_queues; ++q) {
    // append() rather than operator+ chains: GCC 12 -O2+ emits a -Wrestrict
    // false positive (PR105651) for `"lit" + std::to_string(...)` that
    // -Werror turns into a Release-build failure (see src/crowd/analysis.cc).
    std::string metric = "mopeye_tun_queue_flush_q";
    metric.append(std::to_string(q));
    metric.append("_ms");
    const moptel::Histogram* h = reg->FindHistogram(metric);
    if (h == nullptr) {
      continue;
    }
    any = true;
    moputil::LogQuantile merged = h->Merged();
    size_t n = merged.count();
    std::string label = "q";
    label.append(std::to_string(q));
    t.AddRow({std::move(label), std::to_string(n),
              n == 0 ? "-" : mopbench::Ms(merged.Quantile(50.0)),
              n == 0 ? "-" : mopbench::Ms(merged.Quantile(95.0)),
              n == 0 ? "-" : mopbench::Ms(merged.Quantile(99.0))});
  }
  return any ? t.Render() : std::string();
}

LaneSweepResult RunRelayScale(uint64_t seed, int lanes, int tun_queues, int clients,
                              size_t bytes_per_client) {
  moptest::WorldOptions opts;
  opts.seed = seed + static_cast<uint64_t>(lanes) * 1000 + static_cast<uint64_t>(clients);
  opts.first_hop_one_way = moputil::Micros(200);
  opts.default_path_one_way = moputil::Millis(2);
  // Fat link: the relay engine, not the radio, is the bottleneck here.
  opts.uplink_bps = 10e9;
  opts.downlink_bps = 10e9;
  moptest::TestWorld w(opts);
  mopeye::Config cfg = mopbase::MopEyeConfig();
  cfg.worker_lanes = lanes;
  // Thread model v3: the sweep runs the saturated-ingress configuration —
  // gathered tun reads plus (multi-lane) elephant-flow stealing. The default
  // paper-model output (no --lanes) never sets these, so the checked-in
  // baselines are untouched.
  cfg.tun_read_batch = 32;
  cfg.steal_enabled = lanes > 1;
  cfg.lane_tun_write = true;
  // Thread model v4 (--tun-queues=N): shard egress across N tun queue fds
  // and collapse same-flow pure-ACK runs in the gather buffers. Off (0)
  // keeps the v3 single shared fd, so v3 sweep numbers stay comparable.
  if (tun_queues > 0) {
    cfg.tun_queues = tun_queues;
    cfg.ack_coalescing = true;
  }
  // The sweep doubles as the stage-timing showcase: telemetry's per-lane
  // histograms cost one branch per hook and do not perturb the simulation
  // (verified byte-identical against all checked-in baselines).
  cfg.telemetry = true;
  if (!w.StartEngine(cfg).ok()) {
    std::fprintf(stderr, "engine start failed\n");
    std::exit(1);
  }
  // Four apps so the mapper sees a realistic uid mix.
  constexpr int kUids[] = {10150, 10151, 10152, 10153};
  for (int i = 0; i < 4; ++i) {
    w.MakeApp(kUids[i], "com.example.bulk" + std::to_string(i), "Bulk" + std::to_string(i));
  }

  std::vector<std::shared_ptr<mopapps::AppTcpConnection>> conns;
  for (int i = 0; i < clients; ++i) {
    // Distinct server addresses spread the flows across the lane hash.
    auto addr = w.AddServer(
        moppkt::IpAddr(93, 50, static_cast<uint8_t>(i / 250),
                       static_cast<uint8_t>(1 + i % 250)),
        80, moputil::Millis(2),
        [bytes_per_client] { return std::make_unique<mopnet::BulkSourceBehavior>(bytes_per_client); });
    auto conn = mopapps::AppTcpConnection::Create(&w.stack(), kUids[i % 4]);
    conns.push_back(conn);
    // Stagger connects slightly so the SYN burst doesn't dominate the window.
    w.loop().Schedule(moputil::Millis(5) * i, [conn, addr] {
      conn->Connect(addr, [](moputil::Status) {});
    });
  }
  w.loop().RunUntil(moputil::Seconds(240));

  LaneSweepResult r;
  moputil::SimTime first = 0, last = 0;
  for (const auto& conn : conns) {
    r.bytes += conn->bytes_received();
    if (conn->bytes_received() < bytes_per_client) {
      ++r.incomplete;
    }
    if (conn->first_data_time() != 0 && (first == 0 || conn->first_data_time() < first)) {
      first = conn->first_data_time();
    }
    last = std::max(last, conn->last_data_time());
  }
  r.window_s = moputil::ToMillis(last - first) / 1000.0;
  r.mbps = r.window_s > 0 ? static_cast<double>(r.bytes) * 8.0 / r.window_s / 1e6 : 0;
  if (const moptel::Registry* reg = w.engine().telemetry_registry()) {
    r.stage_table = RenderStageBreakdown(reg, lanes);
    if (tun_queues > 1) {
      r.queue_table = RenderQueueBreakdown(reg, tun_queues);
    }
    reg->CounterValue("mopeye_engine_acks_coalesced_total", &r.acks_coalesced);
    r.stage_json = reg->RenderJson();
  }
  return r;
}

int RunLaneSweep(const mopbench::Flags& flags) {
  int lanes = flags.lanes;
  int tun_queues = flags.tun_queues;
  mopbench::PrintHeader("Table 3 (lanes sweep)",
                        "relay scaling across MainWorker lanes, 10 Gbps link");
  std::printf("worker_lanes=%d (write batching %s in this configuration)\n", lanes,
              lanes > 1 ? "on" : "off");
  if (tun_queues > 0) {
    std::printf("tun_queues=%d with pure-ACK coalescing (thread model v4)\n", tun_queues);
  }
  std::printf("\n");
  const int kClientCounts[] = {8, 24, 48};
  const size_t kBytesPerClient = static_cast<size_t>(1.5 * 1024 * 1024);
  moputil::Table t({"clients", "relayed", "window", "throughput", "complete"});
  LaneSweepResult high;
  int high_clients = 0;
  int total_incomplete = 0;
  for (int clients : kClientCounts) {
    LaneSweepResult r = RunRelayScale(flags.seed, lanes, tun_queues, clients, kBytesPerClient);
    t.AddRow({std::to_string(clients),
              mopbench::Num(static_cast<double>(r.bytes) / 1e6) + "MB",
              mopbench::Num(r.window_s) + "s", mopbench::Num(r.mbps) + " Mbps",
              std::to_string(clients - r.incomplete) + "/" + std::to_string(clients)});
    high = r;
    high_clients = clients;
    total_incomplete += r.incomplete;
  }
  std::printf("%s\n", t.Render().c_str());
  if (!high.stage_table.empty()) {
    std::printf("per-lane relay stage timing, %d-client run (p50 simulated cost, n = "
                "observations; tun read/write run on the TunReader/TunWriter actor, "
                "reported as lane 0):\n%s\n",
                high_clients, high.stage_table.c_str());
  }
  if (!high.queue_table.empty()) {
    std::printf("per-tun-queue gathered flush timing, %d-client run:\n%s\n", high_clients,
                high.queue_table.c_str());
  }
  if (tun_queues > 0) {
    std::printf("pure ACKs coalesced in lane gather buffers (%d-client run): %llu\n",
                high_clients, static_cast<unsigned long long>(high.acks_coalesced));
  }
  if (!flags.stage_json.empty() && !high.stage_json.empty()) {
    if (FILE* f = std::fopen(flags.stage_json.c_str(), "w")) {
      std::fputs(high.stage_json.c_str(), f);
      std::fclose(f);
      std::printf("stage histogram JSON (%d-client run) written to %s\n", high_clients,
                  flags.stage_json.c_str());
    }
  }
  // The line the CI smoke and the README scaling table read.
  std::printf("relay scaling summary: lanes=%d tun_queues=%d clients=%d throughput=%.2f Mbps\n",
              lanes, tun_queues > 0 ? tun_queues : 1, high_clients, high.mbps);
  // CI smoke contract: nonzero if any client in any sweep row stalled.
  return total_incomplete == 0 ? 0 : 1;
}

RunResult RunSpeedtest(uint64_t seed, const mopeye::Config* engine_cfg) {
  moptest::WorldOptions opts;
  opts.seed = seed;
  opts.first_hop_one_way = moputil::Millis(2);
  opts.default_path_one_way = moputil::Millis(8);
  moptest::TestWorld w(opts);
  mopapps::App::Mode mode = mopapps::App::Mode::kDirect;
  if (engine_cfg != nullptr) {
    if (!w.StartEngine(*engine_cfg).ok()) {
      std::fprintf(stderr, "engine start failed\n");
      std::exit(1);
    }
    mode = mopapps::App::Mode::kTunnel;
  }
  auto* app = w.MakeApp(10150, "org.zwanoo.android.speedtest", "Speedtest", mode);
  mopapps::SpeedtestSession::Config cfg;
  cfg.download_bytes = 12 * 1024 * 1024;
  cfg.upload_bytes = 12 * 1024 * 1024;
  cfg.parallel = 4;
  mopapps::SpeedtestSession session(app, &w.farm(), cfg, moputil::Rng(seed ^ 0x9e37));
  RunResult out;
  bool done = false;
  session.Start([&](mopapps::SpeedtestSession::Result r) {
    out.down = r.download_mbps;
    out.up = r.upload_mbps;
    done = true;
  });
  w.loop().RunUntil(moputil::Seconds(300));
  if (!done) {
    std::fprintf(stderr, "speedtest did not finish\n");
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = mopbench::ParseFlags(argc, argv);
  if (flags.lanes > 0) {
    return RunLaneSweep(flags);
  }
  mopbench::PrintHeader("Table 3", "throughput overhead of MopEye and Haystack (Mbps)");

  RunResult baseline = RunSpeedtest(flags.seed, nullptr);
  mopeye::Config mop_cfg = mopbase::MopEyeConfig();
  RunResult mopeye_r = RunSpeedtest(flags.seed + 1, &mop_cfg);
  mopeye::Config hay_cfg = mopbase::HaystackConfig();
  RunResult haystack = RunSpeedtest(flags.seed + 2, &hay_cfg);

  moputil::Table t({"throughput", "baseline", "MopEye", "delta", "Haystack", "delta",
                    "paper (base/Mop/Hay)"});
  t.AddRow({"Download", mopbench::Num(baseline.down), mopbench::Num(mopeye_r.down),
            mopbench::Num(baseline.down - mopeye_r.down), mopbench::Num(haystack.down),
            mopbench::Num(baseline.down - haystack.down), "24.47 / 24.01 / 20.19"});
  t.AddRow({"Upload", mopbench::Num(baseline.up), mopbench::Num(mopeye_r.up),
            mopbench::Num(baseline.up - mopeye_r.up), mopbench::Num(haystack.up),
            mopbench::Num(baseline.up - haystack.up), "25.97 / 25.08 / 6.79"});
  std::printf("%s\n", t.Render().c_str());
  std::printf("Expected shape: MopEye within ~1 Mbps of baseline on both directions;\n"
              "Haystack degrades moderately on download and severely on upload.\n");
  return 0;
}
