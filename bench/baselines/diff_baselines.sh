#!/usr/bin/env bash
# Compares the current bench binaries against the checked-in reference
# outputs, so a perf/refactor PR can prove the experiment numbers did not
# move:
#
#   bench/baselines/diff_baselines.sh <build-dir> [bench...]
#
# Every binary runs at --scale=1.0 with the default seed — the same flags
# used to capture the baselines (see capture note below). Exits nonzero if
# any output differs; the diff is printed.
#
# Not covered: micro_hotpath (google-benchmark wall-clock timings) and
# collector_ingest (throughput rates are machine-dependent). Re-capture
# after an *intentional* output change with:
#   build/bench/<name> --scale=1.0 > bench/baselines/<name>.txt
#
# Caveat: outputs are deterministic for a fixed seed on one platform;
# cross-platform floating-point differences (libm, FMA) can produce benign
# last-digit diffs. Baselines were captured on x86-64 Linux / GCC.
set -u

if [ $# -lt 1 ]; then
  echo "usage: $0 <build-dir> [bench...]" >&2
  exit 2
fi
build_dir=$1
shift
baseline_dir=$(dirname "$0")

benches=("$@")
if [ ${#benches[@]} -eq 0 ]; then
  for f in "$baseline_dir"/*.txt; do
    benches+=("$(basename "$f" .txt)")
  done
fi

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

failures=0
for bench in "${benches[@]}"; do
  bin="$build_dir/bench/$bench"
  ref="$baseline_dir/$bench.txt"
  if [ ! -x "$bin" ]; then
    echo "MISSING  $bench (no binary at $bin)"
    failures=$((failures + 1))
    continue
  fi
  if [ ! -f "$ref" ]; then
    echo "MISSING  $bench (no baseline at $ref)"
    failures=$((failures + 1))
    continue
  fi
  "$bin" --scale=1.0 > "$tmp" 2>&1
  if diff_out=$(diff -u "$ref" "$tmp"); then
    echo "OK       $bench"
  else
    echo "DIFF     $bench"
    echo "$diff_out" | head -40
    failures=$((failures + 1))
  fi
done

if [ "$failures" -ne 0 ]; then
  echo "$failures bench(es) differ from baselines" >&2
  exit 1
fi
echo "all baselines match"
