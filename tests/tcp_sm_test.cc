// Unit tests for MopEye's user-space TCP state machine (paper §2.3): every
// transition the engine relies on, driven with hand-built segments.
#include <gtest/gtest.h>

#include "core/tcp_state_machine.h"
#include "netpkt/tcp.h"

namespace {

using mopeye::RelayTcpState;
using mopeye::TcpStateMachine;

moppkt::FlowKey TestFlow() {
  moppkt::FlowKey f;
  f.proto = moppkt::IpProto::kTcp;
  f.local = {moppkt::IpAddr(10, 0, 0, 2), 40000};
  f.remote = {moppkt::IpAddr(93, 1, 2, 3), 443};
  return f;
}

moppkt::TcpSegment Seg(moppkt::TcpFlags flags, uint32_t seq, uint32_t ack,
                       std::span<const uint8_t> payload = {}) {
  moppkt::TcpSegment s;
  s.src_port = 40000;
  s.dst_port = 443;
  s.flags = flags;
  s.seq = seq;
  s.ack = ack;
  s.window = 65535;
  s.payload = payload;
  return s;
}

moppkt::TcpSegment SynSeg(uint32_t seq, uint16_t mss = 1460) {
  auto s = Seg(moppkt::SynFlag(), seq, 0);
  s.mss = mss;
  return s;
}

class SmTest : public ::testing::Test {
 protected:
  SmTest() : sm_(TestFlow(), /*iss=*/5000, /*mss=*/1460, /*window=*/65535) {}

  // Drives the machine to ESTABLISHED (app ISN 100).
  void Establish() {
    sm_.NoteSyn(SynSeg(100));
    auto synack = sm_.MakeSynAck();
    EXPECT_TRUE(synack.flags.syn && synack.flags.ack);
    auto out = sm_.OnAppSegment(Seg(moppkt::AckFlag(), 101, 5001));
    EXPECT_TRUE(out.established);
    EXPECT_EQ(sm_.state(), RelayTcpState::kEstablished);
  }

  TcpStateMachine sm_;
};

TEST_F(SmTest, SynRecordsIsnAndOptions) {
  sm_.NoteSyn(SynSeg(100, 1400));
  EXPECT_EQ(sm_.rcv_nxt(), 101u);
  EXPECT_EQ(sm_.app_mss(), 1400);
  EXPECT_EQ(sm_.state(), RelayTcpState::kListen);
}

TEST_F(SmTest, SynAckCarriesMssAndSequence) {
  sm_.NoteSyn(SynSeg(100));
  auto synack = sm_.MakeSynAck();
  EXPECT_EQ(synack.seq, 5000u);
  EXPECT_EQ(synack.ack, 101u);
  ASSERT_TRUE(synack.mss.has_value());
  EXPECT_EQ(*synack.mss, 1460);
  EXPECT_EQ(synack.window, 65535);
  EXPECT_EQ(sm_.state(), RelayTcpState::kSynRcvd);
  EXPECT_EQ(sm_.snd_nxt(), 5001u);
}

TEST_F(SmTest, SynAckRetransmitKeepsState) {
  sm_.NoteSyn(SynSeg(100));
  (void)sm_.MakeSynAck();
  auto again = sm_.MakeSynAckRetransmit();
  EXPECT_EQ(again.seq, 5000u);
  EXPECT_EQ(sm_.snd_nxt(), 5001u);  // no double-advance
  EXPECT_EQ(sm_.state(), RelayTcpState::kSynRcvd);
}

TEST_F(SmTest, DuplicateSynReported) {
  sm_.NoteSyn(SynSeg(100));
  auto out = sm_.OnAppSegment(SynSeg(100));
  EXPECT_TRUE(out.duplicate_syn);
}

TEST_F(SmTest, InOrderDataRelaysToSocket) {
  Establish();
  std::vector<uint8_t> payload{1, 2, 3, 4};
  auto out = sm_.OnAppSegment(Seg(moppkt::PshAckFlag(), 101, 5001, payload));
  EXPECT_EQ(std::vector<uint8_t>(out.to_socket.begin(), out.to_socket.end()), payload);
  EXPECT_EQ(sm_.rcv_nxt(), 105u);
  EXPECT_EQ(sm_.bytes_from_app(), 4u);
}

TEST_F(SmTest, RetransmittedDataReAcksWithoutRelaying) {
  Establish();
  std::vector<uint8_t> payload{1, 2, 3, 4};
  (void)sm_.OnAppSegment(Seg(moppkt::PshAckFlag(), 101, 5001, payload));
  auto out = sm_.OnAppSegment(Seg(moppkt::PshAckFlag(), 101, 5001, payload));
  EXPECT_TRUE(out.to_socket.empty());
  ASSERT_EQ(out.to_app.size(), 1u);
  EXPECT_TRUE(out.to_app[0].flags.ack);
  EXPECT_EQ(sm_.rcv_nxt(), 105u);  // unchanged
}

TEST_F(SmTest, OutOfOrderDataDropped) {
  Establish();
  std::vector<uint8_t> payload{1, 2};
  auto out = sm_.OnAppSegment(Seg(moppkt::PshAckFlag(), 200, 5001, payload));
  EXPECT_TRUE(out.to_socket.empty());
  EXPECT_EQ(sm_.rcv_nxt(), 101u);
}

TEST_F(SmTest, MakeDataSegmentsAtMss) {
  Establish();
  std::vector<uint8_t> big(3000, 7);
  auto specs = sm_.MakeData(big);
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(specs[0].payload.size(), 1460u);
  EXPECT_EQ(specs[0].seq, 5001u);
  EXPECT_EQ(specs[1].payload.size(), 1460u);
  EXPECT_EQ(specs[1].seq, 5001u + 1460u);
  EXPECT_EQ(specs[2].payload.size(), 80u);
  EXPECT_EQ(sm_.snd_nxt(), 5001u + 3000u);
  EXPECT_EQ(sm_.bytes_to_app(), 3000u);
}

TEST_F(SmTest, PureAckDiscardedButTracked) {
  Establish();
  (void)sm_.MakeData(std::vector<uint8_t>(100, 1));
  auto out = sm_.OnAppSegment(Seg(moppkt::AckFlag(), 101, 5101));
  EXPECT_TRUE(out.to_app.empty());
  EXPECT_TRUE(out.to_socket.empty());
  EXPECT_FALSE(out.established);
}

TEST_F(SmTest, AppFinTriggersHalfCloseAndAck) {
  Establish();
  auto out = sm_.OnAppSegment(Seg(moppkt::FinAckFlag(), 101, 5001));
  EXPECT_TRUE(out.app_half_closed);
  ASSERT_EQ(out.to_app.size(), 1u);
  EXPECT_TRUE(out.to_app[0].flags.ack);
  EXPECT_EQ(out.to_app[0].ack, 102u);  // FIN consumed one
  EXPECT_EQ(sm_.state(), RelayTcpState::kCloseWait);
}

TEST_F(SmTest, PassiveCloseCompletes) {
  Establish();
  (void)sm_.OnAppSegment(Seg(moppkt::FinAckFlag(), 101, 5001));  // app FIN
  auto fin = sm_.MakeFin();                                       // server closed too
  EXPECT_TRUE(fin.flags.fin);
  EXPECT_EQ(sm_.state(), RelayTcpState::kLastAck);
  auto out = sm_.OnAppSegment(Seg(moppkt::AckFlag(), 102, 5002));
  EXPECT_TRUE(out.fully_closed);
  EXPECT_EQ(sm_.state(), RelayTcpState::kClosed);
}

TEST_F(SmTest, ActiveCloseCompletes) {
  Establish();
  auto fin = sm_.MakeFin();  // server closed first
  EXPECT_EQ(sm_.state(), RelayTcpState::kFinWait1);
  // App acks our FIN.
  (void)sm_.OnAppSegment(Seg(moppkt::AckFlag(), 101, fin.seq + 1));
  EXPECT_EQ(sm_.state(), RelayTcpState::kFinWait2);
  // App sends its FIN.
  auto out = sm_.OnAppSegment(Seg(moppkt::FinAckFlag(), 101, fin.seq + 1));
  EXPECT_TRUE(out.fully_closed);
  EXPECT_EQ(sm_.state(), RelayTcpState::kClosed);
}

TEST_F(SmTest, SimultaneousCloseViaFinWait1) {
  Establish();
  (void)sm_.MakeFin();  // we FIN
  // App's FIN arrives before its ACK of ours.
  auto out = sm_.OnAppSegment(Seg(moppkt::FinAckFlag(), 101, 5001));
  EXPECT_TRUE(out.app_half_closed);
  EXPECT_EQ(sm_.state(), RelayTcpState::kClosing);
  auto out2 = sm_.OnAppSegment(Seg(moppkt::AckFlag(), 102, sm_.snd_nxt()));
  EXPECT_TRUE(out2.fully_closed);
}

TEST_F(SmTest, RstTearsDownImmediately) {
  Establish();
  auto out = sm_.OnAppSegment(Seg(moppkt::RstFlag(), 101, 0));
  EXPECT_TRUE(out.app_reset);
  EXPECT_EQ(sm_.state(), RelayTcpState::kClosed);
  // Further segments are ignored.
  auto out2 = sm_.OnAppSegment(Seg(moppkt::AckFlag(), 101, 5001));
  EXPECT_TRUE(out2.to_app.empty());
}

TEST_F(SmTest, MakeRstFromAnyState) {
  sm_.NoteSyn(SynSeg(100));
  auto rst = sm_.MakeRst();
  EXPECT_TRUE(rst.flags.rst);
  EXPECT_EQ(sm_.state(), RelayTcpState::kClosed);
}

// Property sweep: data in MSS-multiples and odd sizes always yields
// contiguous sequence numbers with no gaps or overlaps.
class SmDataSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(SmDataSweep, SequenceNumbersContiguous) {
  TcpStateMachine sm(TestFlow(), 9000, 1460, 65535);
  sm.NoteSyn(SynSeg(100));
  (void)sm.MakeSynAck();
  (void)sm.OnAppSegment(Seg(moppkt::AckFlag(), 101, 9001));
  std::vector<uint8_t> data(GetParam(), 0xAB);
  auto specs = sm.MakeData(data);
  uint32_t expect_seq = 9001;
  size_t total = 0;
  for (const auto& spec : specs) {
    EXPECT_EQ(spec.seq, expect_seq);
    expect_seq += static_cast<uint32_t>(spec.payload.size());
    total += spec.payload.size();
    EXPECT_LE(spec.payload.size(), 1460u);
  }
  EXPECT_EQ(total, GetParam());
  EXPECT_EQ(sm.snd_nxt(), 9001 + GetParam());
}

INSTANTIATE_TEST_SUITE_P(Sizes, SmDataSweep,
                         ::testing::Values(1, 100, 1459, 1460, 1461, 2920, 65535, 100000));

}  // namespace
