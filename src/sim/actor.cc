#include "sim/actor.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace mopsim {

ActorLane::ActorLane(EventLoop* loop, std::string name)
    : loop_(loop),
      name_(std::move(name)),
      log_token_(std::make_shared<const std::string>(name_)) {
  MOP_CHECK(loop != nullptr);
}

namespace {
// Sets the thread-local log lane token for the duration of one task, so log
// lines (and flight-recorder dumps triggered by MOP_CHECK) name the lane
// they ran on. Restores the previous token: a lane task that synchronously
// drives another actor's callback nests correctly.
class ScopedLaneToken {
 public:
  explicit ScopedLaneToken(const char* token) : prev_(moputil::GetLogLaneToken()) {
    moputil::SetLogLaneToken(token);
  }
  ~ScopedLaneToken() { moputil::SetLogLaneToken(prev_); }
  ScopedLaneToken(const ScopedLaneToken&) = delete;
  ScopedLaneToken& operator=(const ScopedLaneToken&) = delete;

 private:
  const char* prev_;
};
}  // namespace

void ActorLane::Submit(SimDuration wake_latency, SimDuration service,
                       std::function<void(SimTime, SimTime)> fn) {
  MOP_CHECK_GE(wake_latency, 0);
  MOP_CHECK_GE(service, 0);
  SimTime start = std::max(loop_->Now() + wake_latency, free_at_);
  SimTime end = start + service;
  free_at_ = end;
  busy_time_ += service;
  ++tasks_run_;
  loop_->ScheduleAt(end, [fn = std::move(fn), token = log_token_, start, end] {
    ScopedLaneToken lane_token(token->c_str());
    fn(start, end);
  });
}

void ActorLane::Submit(SimDuration wake_latency, SimDuration service,
                       std::function<void()> fn) {
  Submit(wake_latency, service,
         [fn = std::move(fn)](SimTime, SimTime) { fn(); });
}

}  // namespace mopsim
