#include "core/tun_writer.h"

#include <algorithm>

#include "telemetry/metrics.h"
#include "util/logging.h"

namespace mopeye {

TunWriter::TunWriter(mopsim::EventLoop* loop, mopdroid::TunDevice* tun, const Config* config,
                     moputil::Rng rng)
    : loop_(loop), tun_(tun), config_(config), rng_(rng), lane_(loop, "TunWriter") {
  MOP_CHECK(tun != nullptr);
}

moputil::SimDuration TunWriter::SubmitPacket(moppkt::PacketBuf packet) {
  if (stopped_ || tun_->closed()) {
    return 0;
  }
  const CostModels& costs = config_->costs;

  if (config_->write_scheme == Config::WriteScheme::kDirectWrite) {
    // The producer writes queue 0's fd itself: it pays the write() syscall
    // plus the occasional contention stall when another thread holds that
    // fd (the stochastic tail in tun_write_contention — the within-queue
    // law; lanes flushing their own queues never contend here). Deliveries
    // stay FIFO per queue.
    moputil::SimTime now = loop_->Now();
    moputil::SimDuration cost = costs.tun_write_syscall->Sample(rng_) +
                                costs.tun_write_contention->Sample(rng_);
    moputil::SimTime delivery = std::max(now + cost, fd_busy_until_ + 1);
    fd_busy_until_ = delivery;
    ++packets_written_;
    ++write_bursts_;
    mopdroid::TunDevice* tun = tun_;
    loop_->ScheduleAt(delivery, [tun, packet = std::move(packet)]() mutable {
      tun->WriteIncoming(std::move(packet));
    });
    producer_overhead_ms_.Add(moputil::ToMillis(cost));
    tunnel_write_ms_.Add(moputil::ToMillis(cost));
    if (stage_hist_ != nullptr) {
      stage_hist_->Observe(0, moputil::ToMillis(cost));
    }
    return cost;
  }

  // kQueueWrite: enqueue and let the TunWriter thread drain.
  queue_.push_back(std::move(packet));
  queue_high_water_ = std::max(queue_high_water_, queue_.size());
  moputil::SimDuration overhead = costs.enqueue->Sample(rng_);

  // The traditional scheme signals on every put — the producer eats the
  // notify() syscall (and its futex tail) even when the writer is running.
  // newPut only ever signals a genuinely parked writer.
  if (config_->put_scheme == Config::PutScheme::kOldPut &&
      state_ != WriterState::kWaiting) {
    overhead += costs.queue_notify->Sample(rng_);
  }
  switch (state_) {
    case WriterState::kWaiting:
      // Writer is parked in wait(): this put pays the notify.
      ++notifies_;
      overhead += costs.queue_notify->Sample(rng_);
      state_ = WriterState::kProcessing;
      ++spin_epoch_;
      lane_.Submit(costs.thread_wake->Sample(rng_), 0, [this] { Pump(); });
      break;
    case WriterState::kSpinning:
      // Writer is inside its check loop; it will see the packet within one
      // spin round — no notify needed (the newPut win). The spin ends here,
      // so only the time actually spun counts as CPU.
      spin_busy_ += static_cast<moputil::SimDuration>(
          static_cast<double>(loop_->Now() - spin_started_) * config_->spin_cpu_fraction);
      state_ = WriterState::kProcessing;
      ++spin_epoch_;
      lane_.Submit(costs.spin_check->Sample(rng_), 0, [this] { Pump(); });
      break;
    case WriterState::kProcessing:
      break;  // the pump chain will pick it up
  }

  producer_overhead_ms_.Add(moputil::ToMillis(overhead));
  return overhead;
}

void TunWriter::Pump() {
  pump_affinity_.Check();
  if (stopped_ || tun_->closed()) {
    return;
  }
  const CostModels& costs = config_->costs;
  if (queue_.empty()) {
    if (config_->put_scheme == Config::PutScheme::kNewPut) {
      // Sleep-counter: keep checking for `newput_spin_rounds` rounds before
      // parking. The check loop burns CPU but leaves the "lane" responsive —
      // a packet arriving mid-spin is picked up within one round, and only
      // the time actually spent spinning is charged (spin_busy_).
      state_ = WriterState::kSpinning;
      spin_started_ = loop_->Now();
      uint64_t epoch = ++spin_epoch_;
      moputil::SimDuration spin_window =
          config_->newput_spin_rounds * costs.spin_check->Sample(rng_);
      loop_->Schedule(spin_window, [this, epoch, spin_window] {
        if (spin_epoch_ == epoch && state_ == WriterState::kSpinning) {
          // No packet showed up during the whole window: park.
          spin_busy_ += static_cast<moputil::SimDuration>(
              static_cast<double>(spin_window) * config_->spin_cpu_fraction);
          state_ = WriterState::kWaiting;
          ++waits_;
        }
      });
    } else {
      state_ = WriterState::kWaiting;
      ++waits_;
    }
    return;
  }
  state_ = WriterState::kProcessing;
  if (config_->write_batching) {
    // Writev-style burst: everything queued right now leaves in one
    // submission — one syscall-class cost for the first packet plus a small
    // marginal cost per extra iovec, and a single lane round-trip instead of
    // one per packet.
    std::deque<moppkt::PacketBuf> burst;
    burst.swap(queue_);
    moputil::SimDuration cost = costs.tun_write_syscall->Sample(rng_);
    for (size_t i = 1; i < burst.size(); ++i) {
      cost += costs.tun_write_batch_extra->Sample(rng_);
    }
    tunnel_write_ms_.Add(moputil::ToMillis(cost));
    if (stage_hist_ != nullptr) {
      stage_hist_->Observe(0, moputil::ToMillis(cost));
    }
    packets_written_ += burst.size();
    ++write_bursts_;
    lane_.Submit(0, cost, [this, burst = std::move(burst)]() mutable {
      for (auto& packet : burst) {
        tun_->WriteIncoming(std::move(packet));
      }
      Pump();
    });
    return;
  }
  moppkt::PacketBuf packet = std::move(queue_.front());
  queue_.pop_front();
  moputil::SimDuration cost = costs.tun_write_syscall->Sample(rng_);
  tunnel_write_ms_.Add(moputil::ToMillis(cost));
  if (stage_hist_ != nullptr) {
    stage_hist_->Observe(0, moputil::ToMillis(cost));
  }
  ++packets_written_;
  ++write_bursts_;
  lane_.Submit(0, cost, [this, packet = std::move(packet)]() mutable {
    tun_->WriteIncoming(std::move(packet));
    Pump();
  });
}

void TunWriter::Stop() {
  stopped_ = true;
  queue_.clear();
}

}  // namespace mopeye
