#include "android/tun_device.h"

#include <algorithm>

#include "netpkt/packet.h"
#include "util/logging.h"

namespace mopdroid {

TunDevice::TunDevice(mopsim::EventLoop* loop)
    : loop_(loop),
      outgoing_(1),
      queue_packets_out_(1, 0),
      queue_packets_in_(1, 0),
      queue_high_water_(1, 0),
      queue_affinity_(1) {
  MOP_CHECK(loop != nullptr);
}

void TunDevice::ConfigureQueues(size_t queues) {
  MOP_CHECK(queues >= 1) << "a tun device needs at least one queue";
  MOP_CHECK(packets_out_ == 0 && packets_in_ == 0 && OutgoingDepth() == 0)
      << "queues must be attached before any traffic";
  outgoing_ = std::vector<std::deque<OutPacket>>(queues);
  queue_packets_out_ = std::vector<uint64_t>(queues, 0);
  queue_packets_in_ = std::vector<uint64_t>(queues, 0);
  queue_high_water_ = std::vector<size_t>(queues, 0);
  queue_affinity_ = std::vector<mopcc::LaneAffinityChecker>(queues);
  read_cursor_ = 0;
}

size_t TunDevice::QueueOf(const moppkt::PacketBuf& datagram) const {
  // Flow-hash classification, a header peek only (same rule the TunReader
  // dispatches lanes by): a flow sticks to one queue, so per-flow FIFO
  // survives the round-robin drain. Unclassifiable packets go to queue 0 —
  // the parse will reject them on the owning lane anyway.
  auto flow = moppkt::PeekFlow(datagram.bytes());
  return flow.ok() ? moppkt::FlowLaneOf(flow.value(), outgoing_.size()) : 0;
}

void TunDevice::InjectOutgoing(moppkt::PacketBuf datagram) {
  if (closed_) {
    return;
  }
  ++packets_out_;
  bytes_out_ += datagram.size();
  size_t q = outgoing_.size() == 1 ? 0 : QueueOf(datagram);
  outgoing_[q].push_back(OutPacket{loop_->Now(), std::move(datagram)});
  ++queue_packets_out_[q];
  queue_high_water_[q] = std::max(queue_high_water_[q], outgoing_[q].size());
  outgoing_high_water_ = std::max(outgoing_high_water_, OutgoingDepth());
  if (on_outgoing_ready) {
    on_outgoing_ready();
  }
}

void TunDevice::InjectOutgoing(std::vector<uint8_t> datagram) {
  InjectOutgoing(moppkt::BufPool::Default().AcquireCopy(datagram));
}

bool TunDevice::HasOutgoing() const {
  for (const auto& q : outgoing_) {
    if (!q.empty()) {
      return true;
    }
  }
  return false;
}

size_t TunDevice::OutgoingDepth() const {
  size_t n = 0;
  for (const auto& q : outgoing_) {
    n += q.size();
  }
  return n;
}

std::optional<TunDevice::OutPacket> TunDevice::ReadOutgoing() {
  for (size_t scanned = 0; scanned < outgoing_.size(); ++scanned) {
    size_t q = (read_cursor_ + scanned) % outgoing_.size();
    if (outgoing_[q].empty()) {
      continue;
    }
    OutPacket pkt = std::move(outgoing_[q].front());
    outgoing_[q].pop_front();
    read_cursor_ = (q + 1) % outgoing_.size();
    return pkt;
  }
  return std::nullopt;
}

size_t TunDevice::ReadOutgoingBurst(size_t max, std::vector<OutPacket>* out) {
  // Round-robin across the queue fds: one packet per non-empty queue per
  // turn, so a bulk flow on one queue cannot starve the others. With a
  // single queue this is exactly the old front-of-deque drain.
  size_t n = 0;
  while (n < max) {
    auto pkt = ReadOutgoing();
    if (!pkt.has_value()) {
      break;
    }
    out->push_back(std::move(*pkt));
    ++n;
  }
  return n;
}

void TunDevice::WriteIncoming(size_t queue, moppkt::PacketBuf datagram) {
  MOP_DCHECK(queue < outgoing_.size());
  if (closed_) {
    return;
  }
  ++packets_in_;
  bytes_in_ += datagram.size();
  ++queue_packets_in_[queue];
  if (on_deliver_to_apps) {
    on_deliver_to_apps(std::move(datagram));
  }
}

void TunDevice::WriteIncoming(moppkt::PacketBuf datagram) {
  WriteIncoming(0, std::move(datagram));
}

void TunDevice::WriteIncoming(std::vector<uint8_t> datagram) {
  WriteIncoming(0, moppkt::BufPool::Default().AcquireCopy(datagram));
}

void TunDevice::Close() {
  closed_ = true;
  for (auto& q : outgoing_) {
    q.clear();
  }
}

}  // namespace mopdroid
