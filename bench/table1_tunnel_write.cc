// Table 1: delay of writing packets to the VPN tunnel under four schemes.
// directWrite / queueWrite bucket the actual tunnel write() delays;
// oldPut / newPut bucket the producer-side enqueue overheads.
#include "baselines/presets.h"
#include "bench/bench_util.h"
#include "tests/test_world.h"

namespace {

// Replays a browsing workload through the relay under `cfg` and returns the
// requested sample set.
moputil::Samples RunBrowsing(uint64_t seed, mopeye::Config cfg, bool producer_side) {
  moptest::WorldOptions opts;
  opts.seed = seed;
  moptest::TestWorld w(opts);
  if (!w.StartEngine(cfg).ok()) {
    std::fprintf(stderr, "engine start failed\n");
    std::exit(1);
  }
  auto* app = w.MakeApp(10170, "com.android.chrome", "Chrome", mopapps::App::Mode::kTunnel);
  mopapps::BrowsingSession::Config bcfg;
  bcfg.pages = 12;
  bcfg.min_conns_per_page = 3;
  bcfg.max_conns_per_page = 8;
  bcfg.min_response = 2 * 1024;
  bcfg.max_response = 32 * 1024;  // 2016-era mobile page objects
  bcfg.domains = {"news.example.org", "images.example.org", "cdn.example.org",
                  "shop.example.org"};
  mopapps::BrowsingSession session(app, &w.farm(), bcfg, moputil::Rng(seed ^ 0xb0));
  bool done = false;
  session.Start([&] { done = true; });
  w.loop().RunUntil(moputil::Seconds(180));
  return producer_side ? w.engine().tun_writer()->producer_overhead_ms()
                       : w.engine().tun_writer()->tunnel_write_ms();
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = mopbench::ParseFlags(argc, argv);
  mopbench::PrintHeader("Table 1", "delay of writing packets to the VPN tunnel");

  mopeye::Config direct = mopbase::MopEyeConfig();
  direct.write_scheme = mopeye::Config::WriteScheme::kDirectWrite;
  mopeye::Config queued = mopbase::MopEyeConfig();  // queueWrite + newPut
  mopeye::Config oldput = mopbase::MopEyeConfig();
  oldput.put_scheme = mopeye::Config::PutScheme::kOldPut;
  mopeye::Config newput = mopbase::MopEyeConfig();

  moputil::Samples cols[4];
  cols[0] = RunBrowsing(flags.seed + 0, direct, /*producer_side=*/true);   // directWrite
  cols[1] = RunBrowsing(flags.seed + 1, queued, /*producer_side=*/false);  // queueWrite
  cols[2] = RunBrowsing(flags.seed + 2, oldput, /*producer_side=*/true);   // oldPut
  cols[3] = RunBrowsing(flags.seed + 3, newput, /*producer_side=*/true);   // newPut

  const int paper_total[4] = {1244, 2161, 810, 5321};
  const int paper_buckets[4][5] = {{1202, 30, 7, 3, 2},
                                   {2147, 12, 2, 0, 0},
                                   {763, 39, 7, 1, 0},
                                   {5317, 1, 1, 2, 0}};

  moputil::Table t({"bucket", "directWrite", "(paper)", "queueWrite", "(paper)", "oldPut",
                    "(paper)", "newPut", "(paper)"});
  const double edges[4] = {1, 2, 5, 10};
  moputil::BucketHistogram hists[4] = {
      moputil::BucketHistogram({1, 2, 5, 10}), moputil::BucketHistogram({1, 2, 5, 10}),
      moputil::BucketHistogram({1, 2, 5, 10}), moputil::BucketHistogram({1, 2, 5, 10})};
  (void)edges;
  for (int c = 0; c < 4; ++c) {
    for (double v : cols[c].values()) {
      hists[c].Add(v);
    }
  }
  std::vector<std::string> total_row{"Total"};
  for (int c = 0; c < 4; ++c) {
    total_row.push_back(std::to_string(hists[c].total()));
    total_row.push_back(std::to_string(paper_total[c]));
  }
  t.AddRow(total_row);
  t.AddSeparator();
  const char* bucket_names[5] = {"0~1ms", "1~2ms", "2~5ms", "5~10ms", ">10ms"};
  for (size_t b = 0; b < 5; ++b) {
    std::vector<std::string> row{bucket_names[b]};
    for (int c = 0; c < 4; ++c) {
      row.push_back(std::to_string(hists[c].count(b)));
      row.push_back(std::to_string(paper_buckets[c][b]));
    }
    t.AddRow(row);
  }
  std::printf("%s\n", t.Render().c_str());

  auto over_1ms = [&](int c) {
    size_t n = 0;
    for (size_t b = 1; b < 5; ++b) {
      n += hists[c].count(b);
    }
    return 100.0 * static_cast<double>(n) / static_cast<double>(std::max<size_t>(1, hists[c].total()));
  };
  std::printf("share of delays > 1ms: directWrite %.2f%% (paper 3.38%%), queueWrite %.2f%% "
              "(paper 0.65%%), oldPut %.2f%% (paper 5.80%%), newPut %.2f%% (paper 0.08%%)\n",
              over_1ms(0), over_1ms(1), over_1ms(2), over_1ms(3));
  return 0;
}
