#include "core/tcp_state_machine.h"

#include <algorithm>

#include "util/logging.h"

namespace mopeye {

const char* RelayTcpStateName(RelayTcpState s) {
  switch (s) {
    case RelayTcpState::kListen:
      return "LISTEN";
    case RelayTcpState::kSynRcvd:
      return "SYN_RCVD";
    case RelayTcpState::kEstablished:
      return "ESTABLISHED";
    case RelayTcpState::kCloseWait:
      return "CLOSE_WAIT";
    case RelayTcpState::kLastAck:
      return "LAST_ACK";
    case RelayTcpState::kFinWait1:
      return "FIN_WAIT_1";
    case RelayTcpState::kFinWait2:
      return "FIN_WAIT_2";
    case RelayTcpState::kClosing:
      return "CLOSING";
    case RelayTcpState::kTimeWait:
      return "TIME_WAIT";
    case RelayTcpState::kClosed:
      return "CLOSED";
  }
  return "?";
}

TcpStateMachine::TcpStateMachine(const moppkt::FlowKey& flow, uint32_t iss, uint16_t mss,
                                 uint16_t window)
    : flow_(flow), iss_(iss), snd_nxt_(iss), snd_una_(iss), mss_(mss), window_(window) {}

moppkt::TcpSegmentSpec TcpStateMachine::BaseSpec() const {
  moppkt::TcpSegmentSpec spec;
  // Toward the app we speak *as the server*: source is the remote endpoint.
  spec.src_port = flow_.remote.port;
  spec.dst_port = flow_.local.port;
  spec.seq = snd_nxt_;
  spec.ack = rcv_nxt_;
  spec.window = window_;
  return spec;
}

void TcpStateMachine::NoteSyn(const moppkt::TcpSegment& syn) {
  MOP_CHECK(state_ == RelayTcpState::kListen);
  MOP_CHECK(syn.flags.syn && !syn.flags.ack);
  rcv_nxt_ = syn.seq + 1;
  if (syn.mss.has_value()) {
    app_mss_ = *syn.mss;
  }
  app_window_ = syn.window;
}

moppkt::TcpSegmentSpec TcpStateMachine::MakeSynAck() {
  MOP_CHECK(state_ == RelayTcpState::kListen) << RelayTcpStateName(state_);
  moppkt::TcpSegmentSpec spec = BaseSpec();
  spec.seq = iss_;
  spec.flags = moppkt::SynAckFlag();
  spec.mss = mss_;  // §3.4: advertise MSS 1460 in the SYN/ACK
  snd_nxt_ = iss_ + 1;
  state_ = RelayTcpState::kSynRcvd;
  return spec;
}

moppkt::TcpSegmentSpec TcpStateMachine::MakeSynAckRetransmit() const {
  MOP_CHECK(state_ == RelayTcpState::kSynRcvd) << RelayTcpStateName(state_);
  moppkt::TcpSegmentSpec spec = BaseSpec();
  spec.seq = iss_;
  spec.flags = moppkt::SynAckFlag();
  spec.mss = mss_;
  return spec;
}

moppkt::TcpSegmentSpec TcpStateMachine::MakeAck() {
  moppkt::TcpSegmentSpec spec = BaseSpec();
  spec.flags = moppkt::AckFlag();
  return spec;
}

std::vector<moppkt::TcpSegmentSpec> TcpStateMachine::MakeData(
    std::span<const uint8_t> payload) {
  // §3.4: no congestion or flow control toward the app; segment at our MSS
  // and stream continuously.
  std::vector<moppkt::TcpSegmentSpec> out;
  size_t offset = 0;
  while (offset < payload.size()) {
    size_t n = std::min<size_t>(mss_, payload.size() - offset);
    moppkt::TcpSegmentSpec spec = BaseSpec();
    spec.flags = moppkt::PshAckFlag();
    spec.payload = payload.subspan(offset, n);
    out.push_back(spec);
    snd_nxt_ += static_cast<uint32_t>(n);
    bytes_to_app_ += n;
    offset += n;
  }
  return out;
}

moppkt::TcpSegmentSpec TcpStateMachine::MakeFin() {
  moppkt::TcpSegmentSpec spec = BaseSpec();
  spec.flags = moppkt::FinAckFlag();
  snd_nxt_ += 1;
  fin_sent_ = true;
  if (state_ == RelayTcpState::kEstablished || state_ == RelayTcpState::kSynRcvd) {
    state_ = RelayTcpState::kFinWait1;
  } else if (state_ == RelayTcpState::kCloseWait) {
    state_ = RelayTcpState::kLastAck;
  }
  return spec;
}

moppkt::TcpSegmentSpec TcpStateMachine::MakeRst() {
  moppkt::TcpSegmentSpec spec = BaseSpec();
  spec.flags = moppkt::RstFlag();
  spec.ack = 0;
  state_ = RelayTcpState::kClosed;
  return spec;
}

TcpStateMachine::Output TcpStateMachine::OnAppSegment(const moppkt::TcpSegment& seg) {
  Output out;
  if (state_ == RelayTcpState::kClosed) {
    return out;
  }

  // RST from the app: §2.3 "closes the external socket connection and
  // removes the TCP client object".
  if (seg.flags.rst) {
    state_ = RelayTcpState::kClosed;
    out.app_reset = true;
    return out;
  }

  // Duplicate SYN while the external connect is still in flight: the app's
  // kernel is retransmitting; nothing to do yet.
  if (seg.flags.syn) {
    out.duplicate_syn = true;
    return out;
  }

  // ACK bookkeeping.
  if (seg.flags.ack && moppkt::SeqGt(seg.ack, snd_una_)) {
    snd_una_ = seg.ack;
  }
  app_window_ = seg.window;

  if (state_ == RelayTcpState::kSynRcvd && seg.flags.ack &&
      moppkt::SeqGe(seg.ack, iss_ + 1)) {
    state_ = RelayTcpState::kEstablished;
    out.established = true;
  }

  // In-order data: relay to the socket write buffer (§2.3 "TCP Data").
  if (!seg.payload.empty()) {
    if (seg.seq == rcv_nxt_) {
      rcv_nxt_ += static_cast<uint32_t>(seg.payload.size());
      bytes_from_app_ += seg.payload.size();
      out.to_socket = seg.payload;
    } else if (moppkt::SeqLt(seg.seq, rcv_nxt_)) {
      // Retransmission of data we already relayed: re-ACK, don't relay.
      out.to_app.push_back(MakeAck());
    }
    // Out-of-order data cannot happen on the lossless in-memory tunnel; if a
    // gap ever appears we drop the segment and let the app retransmit.
  }

  // FIN from the app (must be in order).
  if (seg.flags.fin && seg.seq + seg.payload_size() == rcv_nxt_) {
    rcv_nxt_ += 1;
    // §2.3 "TCP FIN": update to half-closed and ACK immediately.
    out.to_app.push_back(MakeAck());
    switch (state_) {
      case RelayTcpState::kEstablished:
      case RelayTcpState::kSynRcvd:
        state_ = RelayTcpState::kCloseWait;
        out.app_half_closed = true;
        break;
      case RelayTcpState::kFinWait1:
        state_ = fin_sent_ && snd_una_ == snd_nxt_ ? RelayTcpState::kTimeWait
                                                   : RelayTcpState::kClosing;
        if (state_ == RelayTcpState::kTimeWait) {
          state_ = RelayTcpState::kClosed;
          out.fully_closed = true;
        }
        out.app_half_closed = true;
        break;
      case RelayTcpState::kFinWait2:
        state_ = RelayTcpState::kClosed;
        out.fully_closed = true;
        break;
      default:
        break;
    }
    return out;
  }

  // Final ACK transitions for closes.
  if (seg.flags.ack && snd_una_ == snd_nxt_ && fin_sent_) {
    if (state_ == RelayTcpState::kLastAck) {
      state_ = RelayTcpState::kClosed;
      out.fully_closed = true;
    } else if (state_ == RelayTcpState::kFinWait1) {
      state_ = RelayTcpState::kFinWait2;
    } else if (state_ == RelayTcpState::kClosing) {
      state_ = RelayTcpState::kClosed;
      out.fully_closed = true;
    }
  }
  return out;
}

}  // namespace mopeye
