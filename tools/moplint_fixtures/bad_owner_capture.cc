// moplint fixture: both owner-capture hazard shapes MUST be flagged.
// (Not compiled; scanned by tools/moplint_test.py with a pseudo src/ path.)
#include <functional>
#include <memory>

struct Chan {
  std::function<void()> on_data;
  std::function<void()> on_close;
};

void Wire(const std::shared_ptr<Chan>& chan) {
  // Strong self-capture: the std::function member keeps `chan` alive forever.
  chan->on_data = [chan] { (void)chan; };
}

struct Session : std::enable_shared_from_this<Session> {
  std::function<void()> cb;
  Chan* chan = nullptr;
  void Arm() {
    // shared_from_this into a persistent callback member: same cycle.
    chan->on_close = [self = shared_from_this()] { (void)self; };
  }
};
