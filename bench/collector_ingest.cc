// Collector ingest microbenchmark: wire-encode cost, decode+ingest
// throughput (records/sec) into the sharded aggregate store, per-record
// aggregate memory, and sketch accuracy (log-bucket vs P²) against exact
// recomputation — the numbers that bound how much crowd traffic one
// collector process absorbs.
//
//   build/bench/collector_ingest [--scale=1.0] [--seed=20160516]
//
// --scale=1.0 ingests 1M records (the paper's 5.25M dataset is ~5 of these).
#include <chrono>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "collector/server.h"
#include "collector/wire.h"
#include "core/measurement.h"
#include "crowd/world.h"
#include "util/stats.h"

namespace {

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = mopbench::ParseFlags(argc, argv);
  const uint64_t total_records = static_cast<uint64_t>(1000000 * flags.scale);
  const size_t batch_size = 500;
  auto world = mopcrowd::World::Default();
  moputil::Rng rng(flags.seed);

  mopbench::PrintHeader("Collector ingest", "wire codec + sharded aggregate throughput");

  // ---- Generate + encode upload batches (device-clustered, like the wire) ----
  const size_t head_apps = std::min<size_t>(world.apps().size(), 24);
  std::vector<double> app_weights;
  for (size_t a = 0; a < head_apps; ++a) {
    app_weights.push_back(world.apps()[a].install_rate * world.apps()[a].usage_weight);
  }
  // Exact samples for the heaviest app, to score the sketches afterwards.
  const std::string probe_app = world.apps()[0].label;
  moputil::Samples probe_exact;

  std::vector<std::vector<uint8_t>> frames;
  frames.reserve(static_cast<size_t>(total_records / batch_size) + 1);
  uint64_t generated = 0;
  uint64_t wire_bytes = 0;
  uint32_t device = 0;
  auto t0 = std::chrono::steady_clock::now();
  while (generated < total_records) {
    ++device;
    const auto& country = world.countries()[device % world.countries().size()];
    const mopcrowd::IspProfile* isp =
        country.cellular_isps.empty()
            ? nullptr
            : &world.isps()[static_cast<size_t>(
                  country.cellular_isps[device % country.cellular_isps.size()])];
    mopcollect::BatchBuilder builder(device);
    for (size_t i = 0; i < batch_size && generated < total_records; ++i, ++generated) {
      size_t a = rng.WeightedIndex(app_weights);
      const auto& app = world.apps()[a];
      bool wifi = isp == nullptr || rng.Bernoulli(0.5);
      mopnet::NetType net = wifi ? mopnet::NetType::kWifi : isp->type;
      mopeye::Measurement m;
      m.app = app.label;
      m.domain = app.domains.front().pattern;
      m.net_type = net;
      m.isp = wifi ? "HomeFiber" : isp->name;
      m.country = country.code;
      double rtt =
          world.SampleAppRttMs(net, wifi ? nullptr : isp, app.domains.front().placement, rng);
      m.rtt = moputil::Millis(rtt);
      builder.Add(m);
      if (app.label == probe_app) {
        probe_exact.Add(rtt);
      }
    }
    frames.push_back(mopcollect::EncodeBatchFrame(builder.TakeBatch()));
    wire_bytes += frames.back().size();
  }
  double encode_s = SecondsSince(t0);

  // ---- Decode + ingest ----
  mopcollect::CollectorServer server({.shards = 16});
  t0 = std::chrono::steady_clock::now();
  for (const auto& frame : frames) {
    auto accepted = server.IngestPayload({frame.data() + 4, frame.size() - 4});
    if (!accepted.ok()) {
      std::fprintf(stderr, "ingest failed: %s\n", accepted.status().ToString().c_str());
      return 1;
    }
  }
  double ingest_s = SecondsSince(t0);

  const auto& store = server.store();
  moputil::Table t({"metric", "value"});
  t.AddRow({"records", moputil::WithCommas(static_cast<int64_t>(total_records))});
  t.AddRow({"wire bytes/record", mopbench::Num(static_cast<double>(wire_bytes) /
                                               static_cast<double>(total_records))});
  t.AddRow({"encode rate", moputil::StrFormat(
                               "%.2fM rec/s", static_cast<double>(total_records) / encode_s / 1e6)});
  t.AddRow({"decode+ingest rate",
            moputil::StrFormat("%.2fM rec/s",
                               static_cast<double>(total_records) / ingest_s / 1e6)});
  t.AddSeparator();
  t.AddRow({"aggregate keys", moputil::WithCommas(static_cast<int64_t>(store.key_count()))});
  t.AddRow({"shards", std::to_string(store.shard_count())});
  t.AddRow({"aggregate memory", moputil::StrFormat("%.1f KiB",
                                                   static_cast<double>(store.ApproxMemoryBytes()) /
                                                       1024.0)});
  t.AddRow({"aggregate bytes/record",
            mopbench::Num(static_cast<double>(store.ApproxMemoryBytes()) /
                          static_cast<double>(total_records))});
  std::printf("%s\n", t.Render().c_str());

  // ---- Sketch accuracy on the heaviest app (clustered arrival order) ----
  auto stats = server.TcpAppStats();
  for (const auto& s : stats) {
    if (s.app != probe_app) {
      continue;
    }
    mopcollect::AggregateKey key{server.apps().Find(probe_app), mopcollect::kAnyId,
                                 mopcollect::kAnyId, mopcollect::kAnyByte,
                                 static_cast<uint8_t>(mopcrowd::RecordKind::kTcp)};
    const auto* entry = store.Find(key);
    double exact_p50 = probe_exact.Median();
    double exact_p95 = probe_exact.Percentile(95);
    moputil::Table acc({"\"" + probe_app + "\" quantile", "exact", "log sketch", "P2 sketch"});
    // A single collector's store is never merged, so the P² point estimates
    // are queryable here (a fleet-merged view would get a typed error).
    acc.AddRow({"median", mopbench::Ms(exact_p50), mopbench::Ms(s.median_ms),
                entry != nullptr ? mopbench::Ms(entry->p2_median_ms().value()) : "-"});
    acc.AddRow({"P95", mopbench::Ms(exact_p95), mopbench::Ms(s.p95_ms),
                entry != nullptr ? mopbench::Ms(entry->p2_p95_ms().value()) : "-"});
    std::printf("%s\n", acc.Render().c_str());
    break;
  }
  return 0;
}
