#include "baselines/mobiperf.h"

#include <cmath>

#include "util/logging.h"

namespace mopbase {

MobiPerfProber::Options MobiPerfProber::Options::Default() {
  Options o;
  o.pre_overhead = std::make_shared<moputil::LogNormalDelay>(
      moputil::Millis(4.5), 0.45, moputil::Millis(1.2), moputil::Millis(25));
  o.post_overhead = std::make_shared<moputil::LogNormalDelay>(
      moputil::Millis(7.5), 0.55, moputil::Millis(2.5), moputil::Millis(45));
  return o;
}

MobiPerfProber::MobiPerfProber(mopnet::NetContext* net, Options options, moputil::Rng rng)
    : net_(net), options_(std::move(options)), rng_(rng) {
  MOP_CHECK(net != nullptr);
}

void MobiPerfProber::Measure(const moppkt::SocketAddr& addr,
                             std::function<void(std::vector<double>)> done) {
  auto results = std::make_shared<std::vector<double>>();
  RunOne(addr, results, std::move(done));
}

void MobiPerfProber::RunOne(const moppkt::SocketAddr& addr,
                            std::shared_ptr<std::vector<double>> results,
                            std::function<void(std::vector<double>)> done) {
  if (static_cast<int>(results->size()) >= options_.runs) {
    done(*results);
    return;
  }
  // t0 is taken before the task machinery runs (factor 3 in §4.1.1).
  moputil::SimTime t0 = net_->loop()->Now();
  moputil::SimDuration pre = options_.pre_overhead->Sample(rng_);
  net_->loop()->Schedule(pre, [this, addr, results, done, t0] {
    auto channel = mopnet::SocketChannel::Create(net_);
    channel->set_owner_uid(10200);  // the MobiPerf app
    channel->Connect(addr, [this, addr, channel, results, done, t0](moputil::Status st) {
      if (!st.ok()) {
        results->push_back(-1);
        net_->loop()->Schedule(moputil::Millis(100), [this, addr, results, done] {
          RunOne(addr, results, done);
        });
        return;
      }
      // Completion is observed through event notification and wrapped in
      // response handling before the second timestamp.
      moputil::SimDuration post = options_.post_overhead->Sample(rng_);
      double wire_rtt_ms =
          moputil::ToMillis(channel->synack_recv_time() - channel->syn_sent_time());
      post += moputil::Millis(wire_rtt_ms * options_.rtt_proportional *
                              rng_.Uniform(0.3, 1.7));
      net_->loop()->Schedule(post, [this, addr, channel, results, done, t0] {
        moputil::SimTime t1 = net_->loop()->Now();
        double rtt_ms;
        if (options_.floor_to_ms) {
          rtt_ms = static_cast<double>(
              std::floor(moputil::ToMillis(t1)) - std::floor(moputil::ToMillis(t0)));
        } else {
          rtt_ms = moputil::ToMillis(t1 - t0);
        }
        results->push_back(rtt_ms);
        channel->Close();
        // MobiPerf paces its runs.
        net_->loop()->Schedule(moputil::Millis(200), [this, addr, results, done] {
          RunOne(addr, results, done);
        });
      });
    });
  });
}

}  // namespace mopbase
