#include "android/tun_device.h"

#include <algorithm>

#include "util/logging.h"

namespace mopdroid {

TunDevice::TunDevice(mopsim::EventLoop* loop) : loop_(loop) { MOP_CHECK(loop != nullptr); }

void TunDevice::InjectOutgoing(moppkt::PacketBuf datagram) {
  if (closed_) {
    return;
  }
  ++packets_out_;
  bytes_out_ += datagram.size();
  outgoing_.push_back(OutPacket{loop_->Now(), std::move(datagram)});
  outgoing_high_water_ = std::max(outgoing_high_water_, outgoing_.size());
  if (on_outgoing_ready) {
    on_outgoing_ready();
  }
}

void TunDevice::InjectOutgoing(std::vector<uint8_t> datagram) {
  InjectOutgoing(moppkt::BufPool::Default().AcquireCopy(datagram));
}

std::optional<TunDevice::OutPacket> TunDevice::ReadOutgoing() {
  if (outgoing_.empty()) {
    return std::nullopt;
  }
  OutPacket pkt = std::move(outgoing_.front());
  outgoing_.pop_front();
  return pkt;
}

size_t TunDevice::ReadOutgoingBurst(size_t max, std::vector<OutPacket>* out) {
  size_t n = std::min(max, outgoing_.size());
  for (size_t i = 0; i < n; ++i) {
    out->push_back(std::move(outgoing_.front()));
    outgoing_.pop_front();
  }
  return n;
}

void TunDevice::WriteIncoming(moppkt::PacketBuf datagram) {
  if (closed_) {
    return;
  }
  ++packets_in_;
  bytes_in_ += datagram.size();
  if (on_deliver_to_apps) {
    on_deliver_to_apps(std::move(datagram));
  }
}

void TunDevice::WriteIncoming(std::vector<uint8_t> datagram) {
  WriteIncoming(moppkt::BufPool::Default().AcquireCopy(datagram));
}

void TunDevice::Close() {
  closed_ = true;
  outgoing_.clear();
}

}  // namespace mopdroid
