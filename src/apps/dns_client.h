// App-side DNS resolution through the tunnel.
//
// DNS is system-wide on Android (paper §2.2): every app resolves through the
// configured resolver, and with a VPN active the UDP query/response pair
// transits the TUN, where MopEye measures it. This client builds real DNS
// wire messages, registers the UDP flow in the kernel connection table, and
// retries on timeout.
#ifndef MOPEYE_APPS_DNS_CLIENT_H_
#define MOPEYE_APPS_DNS_CLIENT_H_

#include <functional>
#include <memory>
#include <string>

#include "apps/tun_stack.h"
#include "netpkt/dns.h"
#include "util/status.h"
#include "util/time.h"

namespace mopapps {

struct DnsResult {
  moppkt::IpAddr address;
  // App-perceived latency of the successful attempt (query out -> answer in).
  moputil::SimDuration latency = 0;
  int retries = 0;
  bool nxdomain = false;
};

class TunDnsClient {
 public:
  // Queries resolve against the device's configured system resolver.
  TunDnsClient(TunNetStack* stack, int uid);

  // Resolves `domain` (A record). Each attempt gets a fresh UDP socket/port,
  // matching how libc resolvers behave.
  void Resolve(const std::string& domain,
               std::function<void(moputil::Result<DnsResult>)> cb);

  void set_timeout(moputil::SimDuration t) { timeout_ = t; }
  void set_max_retries(int n) { max_retries_ = n; }

 private:
  void Attempt(const std::string& domain, int attempt,
               std::shared_ptr<std::function<void(moputil::Result<DnsResult>)>> cb);

  TunNetStack* stack_;
  int uid_;
  uint16_t next_id_ = 1;
  moputil::SimDuration timeout_ = moputil::Seconds(5);
  int max_retries_ = 2;
};

}  // namespace mopapps

#endif  // MOPEYE_APPS_DNS_CLIENT_H_
