// The §4.2.2 diagnosis workflow as an API consumer: given the dataset, find
// why Whatsapp feels slow (Case 1) and whether Jio's problem is the resolver
// or the core network (Case 2).
//
//   build/examples/diagnose_whatsapp
#include <cstdio>

#include "crowd/analysis.h"
#include "crowd/study.h"
#include "crowd/world.h"

int main() {
  auto world = mopcrowd::World::Default();
  mopcrowd::StudyConfig cfg;
  cfg.scale = 0.15;
  auto ds = mopcrowd::Study(&world, cfg).Run();

  std::printf("== Case 1: why does Whatsapp feel slow? ==\n");
  auto stats = mopcrowd::AppStats(ds, world, {"Whatsapp", "Facebook Messenger", "WeChat"});
  for (const auto& s : stats) {
    std::printf("  %-20s median %6.1f ms over %zu connections\n", s.label.c_str(),
                s.median_ms, s.count);
  }
  auto wa = mopcrowd::AnalyzeWhatsapp(ds);
  std::printf("\n  whatsapp.net uses %zu domains; median of per-domain medians: %.0f ms\n",
              wa.domain_count, wa.whatsapp_net_median);
  std::printf("  - %d domains have median > 200 ms (SoftLayer hosting, median %.0f ms)\n",
              wa.domains_over_200, wa.chat_median);
  std::printf("  - %d domains are fast (Facebook CDN: mme/mmg/pps, median %.0f ms)\n",
              wa.domains_under_100, wa.media_median);
  std::printf("  => chat traffic rides distant hosting; media rides a CDN. Moving the\n"
              "     chat domains onto the CDN would fix the app's tail (paper's Case 1).\n");

  std::printf("\n== Case 2: is Jio's problem the resolver or the core? ==\n");
  auto jio = mopcrowd::AnalyzeJio(ds, world, 30);
  std::printf("  Jio LTE: app RTT median %.0f ms but DNS median %.0f ms over %zu TCP "
              "measurements\n",
              jio.app_median, jio.dns_median, jio.tcp_count);
  std::printf("  per-domain medians (>=30 samples): %d analyzed, %d under 100 ms, %d over "
              "300 ms\n",
              jio.domains_measured, jio.domains_under_100, jio.domains_over_300);
  std::printf("  => the resolver inside the ISP answers fast while most app paths through\n"
              "     the LTE core are slow: the bottleneck is the core network, not the\n"
              "     servers (confirmed in the paper by comparing non-Jio LTE users).\n");
  return 0;
}
