#include "android/device.h"

#include <utility>

#include "net/socket.h"
#include "netpkt/tcp.h"
#include "util/logging.h"

namespace mopdroid {

AndroidDevice::AndroidDevice(mopsim::EventLoop* loop, mopnet::NetworkProfile profile,
                             mopnet::PathTable* paths, mopnet::ServerFarm* farm, uint64_t seed,
                             int sdk_version)
    : loop_(loop),
      net_(loop, std::move(profile), paths, farm, moputil::Rng(seed)),
      proc_net_(&conn_table_),
      rng_(seed ^ 0x5bd1e995u),
      sdk_version_(sdk_version) {
  // System packages present on every device.
  packages_.Install(0, "root", "Kernel");
  packages_.Install(1000, "android.system", "Android System");
}

AndroidDevice::~AndroidDevice() = default;

void AndroidDevice::ActivateVpn(TunDevice* tun, const moppkt::IpAddr& tun_address,
                                std::function<bool(int uid)> uid_excluded) {
  MOP_CHECK(tun != nullptr);
  vpn_tun_ = tun;
  tun_address_ = tun_address;
  // Install the data-loop guard: a socket may bypass the tunnel only if it
  // was protect()ed or belongs to a VPN-excluded app.
  net_.set_protection_checker(
      [uid_excluded = std::move(uid_excluded)](const mopnet::SocketChannel& ch) {
        return ch.protected_socket() || uid_excluded(ch.owner_uid());
      });
}

void AndroidDevice::DeactivateVpn() {
  vpn_tun_ = nullptr;
  net_.set_protection_checker(nullptr);
}

bool AndroidDevice::KernelSendFromApp(moppkt::PacketBuf datagram) {
  if (vpn_tun_ == nullptr || vpn_tun_->closed()) {
    return false;
  }
  vpn_tun_->InjectOutgoing(std::move(datagram));
  return true;
}

bool AndroidDevice::KernelSendFromApp(std::vector<uint8_t> datagram) {
  return KernelSendFromApp(moppkt::BufPool::Default().AcquireCopy(datagram));
}

void AndroidDevice::DownloadManagerEnqueue() {
  // The system download service opens a TCP connection; with the VPN active
  // its SYN lands in the tunnel, which is all the dummy-packet trick needs.
  if (vpn_tun_ == nullptr) {
    return;
  }
  moppkt::TcpSegmentSpec syn;
  syn.src_port = next_download_port_++;
  syn.dst_port = 80;
  syn.seq = 1;
  syn.flags = moppkt::SynFlag();
  syn.mss = 1460;
  moppkt::IpAddr download_server(203, 0, 113, 80);
  std::vector<uint8_t> pkt =
      moppkt::BuildTcpDatagram(syn, tun_address_, download_server);
  // Small service-start latency before the request hits the network stack.
  loop_->Schedule(moputil::Millis(2), [this, pkt = std::move(pkt)]() mutable {
    KernelSendFromApp(std::move(pkt));
  });
}

}  // namespace mopdroid
