// FleetRouter: stable device -> collector-shard assignment.
//
// The fleet partitions devices (not keys) across collectors: a device's
// whole upload stream lands on one collector, so per-batch interning,
// (device_id, batch_seq) dedup, and backoff state all stay collector-local.
// Assignment is a splitmix64 hash of the device id modulo the fleet size —
// stable across restarts, no coordination, near-uniform spread — and every
// device also gets a deterministic failover order (the successive shards,
// wrapping) that the Uploader walks when its home collector is unreachable.
#ifndef MOPEYE_FLEET_ROUTER_H_
#define MOPEYE_FLEET_ROUTER_H_

#include <cstdint>
#include <vector>

#include "netpkt/ip.h"

namespace mopfleet {

class FleetRouter {
 public:
  // `collectors` are the fleet's collector addresses, shard 0..N-1. Must be
  // non-empty.
  explicit FleetRouter(std::vector<moppkt::SocketAddr> collectors);

  size_t shard_count() const { return collectors_.size(); }
  const std::vector<moppkt::SocketAddr>& collectors() const { return collectors_; }

  // Home shard of `device_id` (stable hash, uniform across shards).
  size_t ShardOf(uint32_t device_id) const;
  const moppkt::SocketAddr& PrimaryFor(uint32_t device_id) const {
    return collectors_[ShardOf(device_id)];
  }

  // Failover order for `device_id`: home shard first, then the following
  // shards wrapping around. Feed this to the Uploader's fleet constructor.
  std::vector<moppkt::SocketAddr> PlanFor(uint32_t device_id) const;

 private:
  std::vector<moppkt::SocketAddr> collectors_;
};

}  // namespace mopfleet

#endif  // MOPEYE_FLEET_ROUTER_H_
