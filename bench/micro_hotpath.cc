// google-benchmark micro benches over the relay's hot paths: packet
// parse/build, checksums, DNS codec, the TCP state machine, and the
// real-thread queue algorithms (oldPut vs newPut) under contention.
//
// The README performance section records before/after numbers for the
// zero-copy refactor; re-run with --benchmark_min_time=0.2s when updating it.
#include <benchmark/benchmark.h>

#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "android/tun_device.h"
#include "baselines/presets.h"
#include "concurrent/packet_queue.h"
#include "core/ack_coalesce.h"
#include "concurrent/spsc_ring.h"
#include "core/tcp_state_machine.h"
#include "netpkt/checksum.h"
#include "netpkt/dns.h"
#include "netpkt/packet.h"
#include "netpkt/packet_buf.h"
#include "netpkt/tcp.h"
#include "netpkt/tcp_template.h"
#include "telemetry/metrics.h"
#include "tests/test_world.h"
#include "util/rng.h"
#include "util/time.h"

namespace {

moppkt::FlowKey BenchFlow() {
  moppkt::FlowKey f;
  f.local = {moppkt::IpAddr(10, 0, 0, 2), 40000};
  f.remote = {moppkt::IpAddr(93, 1, 2, 3), 443};
  return f;
}

void BM_ChecksumPayload(benchmark::State& state) {
  std::vector<uint8_t> data(static_cast<size_t>(state.range(0)), 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(moppkt::Checksum(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_ChecksumPayload)->Arg(64)->Arg(1460);

// Forced-implementation variants so the scalar/SSE2/AVX2 gap is visible in
// one run; unsupported impls are skipped rather than silently falling back.
void BM_ChecksumPayloadImpl(benchmark::State& state) {
  auto impl = static_cast<moppkt::ChecksumImpl>(state.range(0));
  if (!moppkt::ChecksumImplSupported(impl)) {
    state.SkipWithError("impl not supported on this machine");
    return;
  }
  state.SetLabel(moppkt::ChecksumImplName(impl));
  std::vector<uint8_t> data(static_cast<size_t>(state.range(1)), 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(moppkt::ChecksumPartialWith(impl, data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(1));
}
BENCHMARK(BM_ChecksumPayloadImpl)
    ->ArgsProduct({{static_cast<int64_t>(moppkt::ChecksumImpl::kScalar),
                    static_cast<int64_t>(moppkt::ChecksumImpl::kSse2),
                    static_cast<int64_t>(moppkt::ChecksumImpl::kAvx2)},
                   {64, 1460, 9000}});

void BM_BuildTcpDatagram(benchmark::State& state) {
  std::vector<uint8_t> payload(static_cast<size_t>(state.range(0)), 0x42);
  moppkt::TcpSegmentSpec spec;
  spec.src_port = 443;
  spec.dst_port = 40000;
  spec.seq = 1;
  spec.ack = 2;
  spec.flags = moppkt::PshAckFlag();
  spec.payload = payload;
  moppkt::IpAddr src(93, 1, 2, 3), dst(10, 0, 0, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(moppkt::BuildTcpDatagram(spec, src, dst));
  }
}
BENCHMARK(BM_BuildTcpDatagram)->Arg(0)->Arg(1460);

void BM_ParsePacket(benchmark::State& state) {
  // View-based parse: no ownership transfer, no copy — the packet is parsed
  // in place exactly as the engine parses a pooled tun-read buffer.
  std::vector<uint8_t> payload(static_cast<size_t>(state.range(0)), 0x42);
  moppkt::TcpSegmentSpec spec;
  spec.src_port = 40000;
  spec.dst_port = 443;
  spec.flags = moppkt::PshAckFlag();
  spec.payload = payload;
  auto pkt = moppkt::BuildTcpDatagram(spec, moppkt::IpAddr(10, 0, 0, 2),
                                      moppkt::IpAddr(93, 1, 2, 3));
  for (auto _ : state) {
    benchmark::DoNotOptimize(moppkt::ParsePacket(pkt));
  }
}
BENCHMARK(BM_ParsePacket)->Arg(0)->Arg(1460);

void BM_BuildTcpDatagramInto(benchmark::State& state) {
  // In-place build into a pooled slab: the allocation-free variant of
  // BM_BuildTcpDatagram.
  std::vector<uint8_t> payload(static_cast<size_t>(state.range(0)), 0x42);
  moppkt::TcpSegmentSpec spec;
  spec.src_port = 443;
  spec.dst_port = 40000;
  spec.seq = 1;
  spec.ack = 2;
  spec.flags = moppkt::PshAckFlag();
  spec.payload = payload;
  moppkt::IpAddr src(93, 1, 2, 3), dst(10, 0, 0, 2);
  moppkt::BufPool pool;
  moppkt::PacketBuf buf = pool.Acquire();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        moppkt::BuildTcpDatagramInto(spec, src, dst, 7, 64, buf.writable()));
  }
}
BENCHMARK(BM_BuildTcpDatagramInto)->Arg(0)->Arg(1460);

void BM_TemplateEmit(benchmark::State& state) {
  // Per-flow prototype stamping (header memcpy + RFC 1624 incremental
  // checksums): what the engine does for every steady-state segment.
  std::vector<uint8_t> payload(static_cast<size_t>(state.range(0)), 0x42);
  moppkt::IpAddr src(93, 1, 2, 3), dst(10, 0, 0, 2);
  moppkt::TcpPacketTemplate tmpl(src, dst, 443, 40000);
  moppkt::BufPool pool;
  moppkt::PacketBuf buf = pool.Acquire();
  uint16_t ip_id = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tmpl.Emit(1, 2, moppkt::PshAckFlag(), 65535, ip_id++,
                                       payload, buf.writable()));
  }
}
BENCHMARK(BM_TemplateEmit)->Arg(0)->Arg(1460);

void BM_ChecksumIncremental(benchmark::State& state) {
  // RFC 1624 header-edit update vs re-summing the packet.
  uint16_t csum = 0x1234;
  uint16_t word = 0;
  for (auto _ : state) {
    csum = moppkt::ChecksumIncrementalUpdate(csum, word, static_cast<uint16_t>(word + 1));
    ++word;
    benchmark::DoNotOptimize(csum);
  }
}
BENCHMARK(BM_ChecksumIncremental);

void BM_RelayHotPath(benchmark::State& state) {
  // The full steady-state relay of one 1460-byte data segment: pooled parse
  // -> TCP state machine -> template-stamped ACK, zero allocations.
  std::vector<uint8_t> payload(1460, 0x55);
  moppkt::FlowKey flow = BenchFlow();
  moppkt::BufPool pool;

  // Prebuild the inbound data packet once; each iteration re-parses it from
  // a pooled buffer like a fresh tun read.
  moppkt::TcpSegmentSpec data_spec;
  data_spec.src_port = flow.local.port;
  data_spec.dst_port = flow.remote.port;
  data_spec.seq = 101;
  data_spec.ack = 5001;
  data_spec.flags = moppkt::PshAckFlag();
  data_spec.payload = payload;
  auto wire = moppkt::BuildTcpDatagram(data_spec, flow.local.ip, flow.remote.ip);
  moppkt::PacketBuf in = pool.AcquireCopy(wire);
  moppkt::PacketBuf out = pool.Acquire();
  moppkt::TcpPacketTemplate tmpl(flow.remote.ip, flow.local.ip, flow.remote.port,
                                 flow.local.port);

  mopeye::TcpStateMachine sm(flow, 5000, 1460, 65535);
  moppkt::TcpSegment syn;
  syn.flags = moppkt::SynFlag();
  syn.seq = 100;
  sm.NoteSyn(syn);
  (void)sm.MakeSynAck();
  moppkt::TcpSegment ack;
  ack.flags = moppkt::AckFlag();
  ack.seq = 101;
  ack.ack = 5001;
  (void)sm.OnAppSegment(ack);

  uint16_t ip_id = 0;
  uint32_t expected_seq = 101;
  for (auto _ : state) {
    auto parsed = moppkt::ParsePacket(in.bytes());
    auto seg = *parsed.value().tcp;
    seg.seq = expected_seq;  // keep the segment in-order across iterations
    auto sm_out = sm.OnAppSegment(seg);
    benchmark::DoNotOptimize(sm_out.to_socket.data());
    out.set_size(tmpl.Emit(sm.snd_nxt(), sm.rcv_nxt(), moppkt::AckFlag(), 65535,
                           ip_id++, {}, out.writable()));
    expected_seq += 1460;
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 1460);
}
BENCHMARK(BM_RelayHotPath);

// ---- Per-packet relay iteration, with and without telemetry ----
//
// The engine's actual per-segment path is wider than the BM_RelayHotPath
// kernel: every tun read is copied into a pooled buffer, hops the
// TunReader->lane queue, is lane-dispatched by flow hash, looked up in the
// flow table, parsed, run through the state machine, and the stamped reply
// hops the lane->TunWriter queue. Both variants below run that full
// iteration and draw the same lognormal stage-cost samples the engine's
// DelayModels produce; the telemetry variant additionally performs the three
// per-segment stage observations (dispatch, parse, tcp) the engine adds with
// Config::telemetry on. The README records the throughput delta between the
// two; the acceptance bar is <= 2%.
struct RelayIterationFixture {
  static constexpr size_t kTickMask = 4095;

  std::vector<uint8_t> payload = std::vector<uint8_t>(1460, 0x55);
  moppkt::FlowKey flow = BenchFlow();
  moppkt::BufPool pool;
  mopcc::PacketQueue<moppkt::PacketBuf> read_q{mopcc::PutMode::kNewPut};
  mopcc::PacketQueue<moppkt::PacketBuf> write_q{mopcc::PutMode::kNewPut};
  std::unordered_map<moppkt::FlowKey, int, moppkt::FlowKeyHash> flows;
  std::vector<uint8_t> wire;
  moppkt::TcpPacketTemplate tmpl{flow.remote.ip, flow.local.ip, flow.remote.port,
                                 flow.local.port};
  mopeye::TcpStateMachine sm{flow, 5000, 1460, 65535};
  std::vector<int64_t> ticks = std::vector<int64_t>(kTickMask + 1);

  RelayIterationFixture() {
    moppkt::TcpSegmentSpec data_spec;
    data_spec.src_port = flow.local.port;
    data_spec.dst_port = flow.remote.port;
    data_spec.seq = 101;
    data_spec.ack = 5001;
    data_spec.flags = moppkt::PshAckFlag();
    data_spec.payload = payload;
    wire = moppkt::BuildTcpDatagram(data_spec, flow.local.ip, flow.remote.ip);

    // A realistic uid mix in the flow table so the lookup is not a
    // single-entry cache hit.
    for (int i = 0; i < 64; ++i) {
      moppkt::FlowKey k = flow;
      k.local.port = static_cast<uint16_t>(40000 + i);
      flows[k] = 10150 + (i % 4);
    }

    moppkt::TcpSegment syn;
    syn.flags = moppkt::SynFlag();
    syn.seq = 100;
    sm.NoteSyn(syn);
    (void)sm.MakeSynAck();
    moppkt::TcpSegment ack;
    ack.flags = moppkt::AckFlag();
    ack.seq = 101;
    ack.ack = 5001;
    (void)sm.OnAppSegment(ack);

    // Pre-sample stage costs from the same distribution family the engine's
    // cost models use (engine.cc samples these regardless of telemetry; the
    // telemetry variant pays only the ms conversion and the Observe).
    moputil::Rng rng(0x7e1e);
    moputil::LogNormalDelay cost(moputil::Micros(9), 0.35, moputil::Micros(3),
                                 moputil::Micros(120));
    for (int64_t& t : ticks) t = cost.Sample(rng);
  }

  // One full relay iteration; returns the sampled stage-cost base index.
  template <typename Telemetry>
  void Run(benchmark::State& state, Telemetry&& observe) {
    uint16_t ip_id = 0;
    uint32_t expected_seq = 101;
    size_t it = 0;
    for (auto _ : state) {
      moppkt::PacketBuf in = pool.AcquireCopy(wire);  // tun read -> pooled buf
      read_q.Put(std::move(in));                      // TunReader -> lane hop
      moppkt::PacketBuf pkt = std::move(*read_q.TryTake());
      size_t lane = moppkt::FlowLaneOf(flow, 4);  // flow-affine dispatch
      benchmark::DoNotOptimize(lane);             // the engine computes this either way
      auto fit = flows.find(flow);                // per-packet flow-table lookup
      benchmark::DoNotOptimize(fit->second);
      auto parsed = moppkt::ParsePacket(pkt.bytes());
      auto seg = *parsed.value().tcp;
      seg.seq = expected_seq;  // keep the segment in-order across iterations
      auto sm_out = sm.OnAppSegment(seg);
      benchmark::DoNotOptimize(sm_out.to_socket.data());
      moppkt::PacketBuf out = pool.Acquire();
      out.set_size(tmpl.Emit(sm.snd_nxt(), sm.rcv_nxt(), moppkt::AckFlag(), 65535,
                             ip_id++, {}, out.writable()));
      write_q.Put(std::move(out));  // lane -> TunWriter hop
      moppkt::PacketBuf flushed = std::move(*write_q.TryTake());
      benchmark::DoNotOptimize(flushed.bytes().data());
      // The engine samples its three stage costs whether or not telemetry is
      // on; both variants consume them, only one observes them.
      size_t base = (it += 3) & kTickMask;
      int64_t dispatch_t = ticks[base];
      int64_t parse_t = ticks[(base + 1) & kTickMask];
      int64_t tcp_t = ticks[(base + 2) & kTickMask];
      benchmark::DoNotOptimize(dispatch_t + parse_t + tcp_t);
      observe(lane, dispatch_t, parse_t, tcp_t);
      expected_seq += 1460;
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 1460);
  }
};

void BM_HistogramObserve(benchmark::State& state) {
  // One stage-histogram observation with engine-like lognormal samples: the
  // unit cost the per-segment telemetry hooks pay (cell-table fast path; the
  // exact log() fallback only on bucket-boundary slivers).
  moptel::Registry registry(4);
  moptel::Histogram* h = registry.AddHistogram("bench_ms", "bench");
  moputil::Rng rng(0x7e1e);
  moputil::LogNormalDelay cost(moputil::Micros(9), 0.35, moputil::Micros(3),
                               moputil::Micros(120));
  constexpr size_t kMask = 4095;
  std::vector<double> ms(kMask + 1);
  for (double& v : ms) v = moputil::ToMillis(cost.Sample(rng));
  size_t i = 0;
  for (auto _ : state) {
    h->Observe(1, ms[i++ & kMask]);
  }
}
BENCHMARK(BM_HistogramObserve);

void BM_RelayPerPacket(benchmark::State& state) {
  RelayIterationFixture fx;
  fx.Run(state, [](size_t, int64_t, int64_t, int64_t) {});
}
BENCHMARK(BM_RelayPerPacket);

void BM_RelayPerPacketTelemetry(benchmark::State& state) {
  RelayIterationFixture fx;
  moptel::Registry registry(4);
  moptel::Histogram* stage_dispatch =
      registry.AddHistogram("mopeye_relay_stage_dispatch_ms", "bench");
  moptel::Histogram* stage_parse =
      registry.AddHistogram("mopeye_relay_stage_parse_ms", "bench");
  moptel::Histogram* stage_tcp = registry.AddHistogram("mopeye_relay_stage_tcp_ms", "bench");
  fx.Run(state, [&](size_t lane, int64_t dispatch_t, int64_t parse_t, int64_t tcp_t) {
    stage_dispatch->Observe(lane, moputil::ToMillis(dispatch_t));
    stage_parse->Observe(lane, moputil::ToMillis(parse_t));
    stage_tcp->Observe(lane, moputil::ToMillis(tcp_t));
  });
}
BENCHMARK(BM_RelayPerPacketTelemetry);

// Engine-level relay throughput, telemetry off vs on. The per-packet kernel
// above is an adversarial floor: it strips a relayed segment down to ~250 ns,
// so even a few nanoseconds of instrumentation read as several percent. This
// one answers the question the README records — what Config::telemetry costs
// the actual relay — by pushing the same fixed bulk workload through the real
// engine and wall-clock timing it end to end.
void BM_EngineRelay(benchmark::State& state) {
  const bool telemetry = state.range(0) != 0;
  constexpr int kClients = 6;
  constexpr size_t kBytesPerClient = 2 * 1024 * 1024;
  uint64_t relayed = 0;
  for (auto _ : state) {
    moptest::WorldOptions opts;
    opts.seed = 0x5eed;
    opts.first_hop_one_way = moputil::Micros(200);
    opts.default_path_one_way = moputil::Millis(2);
    // Fat link so the relay engine, not the radio, is the bottleneck.
    opts.uplink_bps = 10e9;
    opts.downlink_bps = 10e9;
    moptest::TestWorld w(opts);
    mopeye::Config cfg = mopbase::MopEyeConfig();
    cfg.worker_lanes = 4;
    cfg.telemetry = telemetry;
    if (!w.StartEngine(cfg).ok()) {
      state.SkipWithError("engine start failed");
      return;
    }
    w.MakeApp(10150, "com.example.bulk", "Bulk");
    std::vector<std::shared_ptr<mopapps::AppTcpConnection>> conns;
    for (int i = 0; i < kClients; ++i) {
      auto addr = w.AddServer(
          moppkt::IpAddr(93, 70, 0, static_cast<uint8_t>(1 + i)), 80,
          moputil::Millis(2),
          [kBytesPerClient] { return std::make_unique<mopnet::BulkSourceBehavior>(kBytesPerClient); });
      auto conn = mopapps::AppTcpConnection::Create(&w.stack(), 10150);
      conns.push_back(conn);
      w.loop().Schedule(moputil::Millis(5) * i,
                        [conn, addr] { conn->Connect(addr, [](moputil::Status) {}); });
    }
    w.loop().RunUntil(moputil::Seconds(120));
    for (const auto& conn : conns) relayed += conn->bytes_received();
  }
  state.SetBytesProcessed(static_cast<int64_t>(relayed));
}
BENCHMARK(BM_EngineRelay)->Arg(0)->Arg(1)->ArgNames({"telemetry"})->Unit(benchmark::kMillisecond);

void BM_DnsEncodeDecode(benchmark::State& state) {
  auto query = moppkt::DnsMessage::Query(1234, "graph.facebook.com");
  for (auto _ : state) {
    auto bytes = moppkt::EncodeDns(query);
    benchmark::DoNotOptimize(moppkt::DecodeDns(bytes));
  }
}
BENCHMARK(BM_DnsEncodeDecode);

void BM_TcpStateMachineRelay(benchmark::State& state) {
  // One full handshake + data exchange per iteration.
  std::vector<uint8_t> payload(1460, 0x55);
  for (auto _ : state) {
    mopeye::TcpStateMachine sm(BenchFlow(), 5000, 1460, 65535);
    moppkt::TcpSegment syn;
    syn.src_port = 40000;
    syn.dst_port = 443;
    syn.flags = moppkt::SynFlag();
    syn.seq = 100;
    syn.mss = 1460;
    sm.NoteSyn(syn);
    benchmark::DoNotOptimize(sm.MakeSynAck());
    moppkt::TcpSegment ack;
    ack.flags = moppkt::AckFlag();
    ack.seq = 101;
    ack.ack = 5001;
    benchmark::DoNotOptimize(sm.OnAppSegment(ack));
    moppkt::TcpSegment data;
    data.flags = moppkt::PshAckFlag();
    data.seq = 101;
    data.ack = 5001;
    data.payload = payload;
    benchmark::DoNotOptimize(sm.OnAppSegment(data));
    benchmark::DoNotOptimize(sm.MakeData(payload));
  }
}
BENCHMARK(BM_TcpStateMachineRelay);

// Real-thread producer put() cost with a live consumer: the Table 1
// algorithms under genuine contention.
void BM_QueuePut(benchmark::State& state) {
  mopcc::PutMode mode =
      state.range(0) == 0 ? mopcc::PutMode::kOldPut : mopcc::PutMode::kNewPut;
  mopcc::PacketQueue<int> q(mode, 20000);
  std::thread consumer([&q] {
    while (q.Take().has_value()) {
    }
  });
  int i = 0;
  for (auto _ : state) {
    q.Put(i++);
  }
  state.counters["consumer_waits"] = static_cast<double>(q.waits());
  q.Stop();
  consumer.join();
}
BENCHMARK(BM_QueuePut)->Arg(0)->Arg(1)->ArgNames({"newput"});

// Burst drain cost: popping a 64-packet burst one Take at a time (64 lock
// round-trips) vs one TakeAll swap (a single round-trip) — the writev-style
// drain the TunWriter uses.
void BM_QueueDrainBurst(benchmark::State& state) {
  constexpr int kBurst = 64;
  bool batched = state.range(0) != 0;
  mopcc::PacketQueue<int> q(mopcc::PutMode::kNewPut);
  for (auto _ : state) {
    for (int i = 0; i < kBurst; ++i) {
      q.Put(i);
    }
    if (batched) {
      benchmark::DoNotOptimize(q.TryTakeAll());
    } else {
      while (q.TryTake().has_value()) {
      }
    }
  }
  state.SetItemsProcessed(state.iterations() * kBurst);
}
BENCHMARK(BM_QueueDrainBurst)->Arg(0)->Arg(1)->ArgNames({"takeall"});

// The gather-tail coalescing decision (thread model v4): for each emitted
// pure ACK, compare its GatherMeta against the buffer tail and either
// replace the tail (same flow, superseded cumulative ACK) or append. Arg 0
// is an ACK run split across flows (never coalesces — the miss path); arg 1
// is a same-flow run (always coalesces — the hit path).
void BM_AckCoalesce(benchmark::State& state) {
  const bool same_flow = state.range(0) != 0;
  constexpr size_t kRun = 64;
  std::vector<mopeye::GatherMeta> metas(kRun);
  for (size_t i = 0; i < kRun; ++i) {
    moppkt::TcpSegmentSpec spec;
    spec.src_port = 443;
    spec.dst_port = same_flow ? 40000 : static_cast<uint16_t>(40000 + i);
    spec.seq = 5001;
    spec.ack = 101 + static_cast<uint32_t>(i) * 1460;
    spec.flags = moppkt::AckFlag();
    moppkt::FlowKey flow = BenchFlow();
    flow.local.port = spec.dst_port;
    metas[i] = mopeye::MetaForSpec(flow, spec);
  }
  std::vector<mopeye::GatherMeta> gather;
  gather.reserve(kRun);
  uint64_t coalesced = 0;
  for (auto _ : state) {
    gather.clear();
    for (const auto& meta : metas) {
      if (!gather.empty() && mopeye::AckSupersedes(gather.back(), meta)) {
        gather.back() = meta;
        ++coalesced;
      } else {
        gather.push_back(meta);
      }
    }
    benchmark::DoNotOptimize(gather.size());
  }
  state.counters["coalesced_per_run"] =
      state.iterations() > 0
          ? static_cast<double>(coalesced) / static_cast<double>(state.iterations())
          : 0;
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * kRun);
}
BENCHMARK(BM_AckCoalesce)->Arg(0)->Arg(1)->ArgNames({"same_flow"});

// Multi-queue tun fan-out + round-robin drain (thread model v4): inject a
// 64-packet burst of 16 distinct flows (flow-hash classified onto the
// queues) and drain it with one ReadOutgoingBurst sweep. Arg = attached
// queue count; 1 is the paper's single shared fd.
void BM_QueueFlush(benchmark::State& state) {
  const size_t queues = static_cast<size_t>(state.range(0));
  constexpr size_t kBurst = 64;
  constexpr size_t kFlows = 16;
  moppkt::BufPool pool;
  std::vector<std::vector<uint8_t>> wires;
  for (size_t i = 0; i < kFlows; ++i) {
    moppkt::TcpSegmentSpec spec;
    spec.src_port = static_cast<uint16_t>(40000 + i);
    spec.dst_port = 443;
    spec.seq = 101;
    spec.ack = 5001;
    spec.flags = moppkt::AckFlag();
    wires.push_back(moppkt::BuildTcpDatagram(spec, moppkt::IpAddr(10, 0, 0, 2),
                                             moppkt::IpAddr(93, 1, 2, 3)));
  }
  mopsim::EventLoop loop;
  mopdroid::TunDevice tun(&loop);
  if (queues > 1) {
    tun.ConfigureQueues(queues);
  }
  std::vector<mopdroid::TunDevice::OutPacket> burst;
  burst.reserve(kBurst);
  for (auto _ : state) {
    for (size_t i = 0; i < kBurst; ++i) {
      tun.InjectOutgoing(pool.AcquireCopy(wires[i % kFlows]));
    }
    burst.clear();
    while (tun.ReadOutgoingBurst(kBurst, &burst) > 0) {
      burst.clear();
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * kBurst);
}
BENCHMARK(BM_QueueFlush)->Arg(1)->Arg(8)->ArgNames({"queues"});

void BM_SpscRingPushPop(benchmark::State& state) {
  mopcc::SpscRing<int> ring(4096);
  std::atomic<bool> stop{false};
  std::thread consumer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      benchmark::DoNotOptimize(ring.Pop());
    }
    while (ring.Pop().has_value()) {
    }
  });
  int i = 0;
  for (auto _ : state) {
    while (!ring.Push(i)) {
      std::this_thread::yield();
    }
    ++i;
  }
  stop.store(true, std::memory_order_release);
  consumer.join();
}
BENCHMARK(BM_SpscRingPushPop);

}  // namespace

BENCHMARK_MAIN();
