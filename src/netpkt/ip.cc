#include "netpkt/ip.h"

#include <cstdio>

#include "netpkt/checksum.h"
#include "util/logging.h"
#include "util/strings.h"

namespace moppkt {

moputil::Result<IpAddr> IpAddr::Parse(const std::string& text) {
  auto parts = moputil::Split(text, '.');
  if (parts.size() != 4) {
    return moputil::InvalidArgument("bad IPv4 literal: " + text);
  }
  uint32_t value = 0;
  for (const auto& part : parts) {
    if (part.empty() || part.size() > 3) {
      return moputil::InvalidArgument("bad IPv4 octet: " + text);
    }
    int octet = 0;
    for (char c : part) {
      if (c < '0' || c > '9') {
        return moputil::InvalidArgument("bad IPv4 octet: " + text);
      }
      octet = octet * 10 + (c - '0');
    }
    if (octet > 255) {
      return moputil::InvalidArgument("IPv4 octet out of range: " + text);
    }
    value = (value << 8) | static_cast<uint32_t>(octet);
  }
  return IpAddr(value);
}

std::string IpAddr::ToString() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (value_ >> 24) & 0xff, (value_ >> 16) & 0xff,
                (value_ >> 8) & 0xff, value_ & 0xff);
  return buf;
}

std::string SocketAddr::ToString() const {
  return ip.ToString() + ":" + std::to_string(port);
}

namespace {
uint16_t GetU16(std::span<const uint8_t> d, size_t pos) {
  return static_cast<uint16_t>((d[pos] << 8) | d[pos + 1]);
}
uint32_t GetU32(std::span<const uint8_t> d, size_t pos) {
  return (static_cast<uint32_t>(d[pos]) << 24) | (static_cast<uint32_t>(d[pos + 1]) << 16) |
         (static_cast<uint32_t>(d[pos + 2]) << 8) | d[pos + 3];
}
}  // namespace

moputil::Result<Ipv4Header> ParseIpv4(std::span<const uint8_t> data) {
  if (data.size() < 20) {
    return moputil::InvalidArgument("IPv4 datagram shorter than minimal header");
  }
  uint8_t version = data[0] >> 4;
  if (version != 4) {
    return moputil::InvalidArgument("not an IPv4 packet (version " +
                                    std::to_string(version) + ")");
  }
  Ipv4Header h;
  h.ihl = data[0] & 0x0f;
  if (h.ihl < 5) {
    return moputil::InvalidArgument("IPv4 IHL below 5");
  }
  if (h.header_bytes() > data.size()) {
    return moputil::InvalidArgument("IPv4 header runs past buffer");
  }
  h.dscp_ecn = data[1];
  h.total_length = GetU16(data, 2);
  if (h.total_length < h.header_bytes() || h.total_length > data.size()) {
    return moputil::InvalidArgument("IPv4 total length out of bounds");
  }
  h.identification = GetU16(data, 4);
  h.flags_fragment = GetU16(data, 6);
  h.ttl = data[8];
  h.protocol = data[9];
  h.checksum = GetU16(data, 10);
  h.src = IpAddr(GetU32(data, 12));
  h.dst = IpAddr(GetU32(data, 16));
  if (Checksum(data.subspan(0, h.header_bytes())) != 0) {
    return moputil::InvalidArgument("IPv4 header checksum mismatch");
  }
  return h;
}

void WriteIpv4Header(const Ipv4Header& h, uint16_t total_length, std::span<uint8_t> out) {
  MOP_CHECK(out.size() >= 20);
  uint8_t* d = out.data();
  d[0] = 0x45;  // version 4, IHL 5: the relay never emits IP options
  d[1] = h.dscp_ecn;
  d[2] = static_cast<uint8_t>(total_length >> 8);
  d[3] = static_cast<uint8_t>(total_length & 0xff);
  d[4] = static_cast<uint8_t>(h.identification >> 8);
  d[5] = static_cast<uint8_t>(h.identification & 0xff);
  d[6] = static_cast<uint8_t>(h.flags_fragment >> 8);
  d[7] = static_cast<uint8_t>(h.flags_fragment & 0xff);
  d[8] = h.ttl;
  d[9] = h.protocol;
  d[10] = 0;
  d[11] = 0;
  d[12] = static_cast<uint8_t>(h.src.value() >> 24);
  d[13] = static_cast<uint8_t>(h.src.value() >> 16);
  d[14] = static_cast<uint8_t>(h.src.value() >> 8);
  d[15] = static_cast<uint8_t>(h.src.value());
  d[16] = static_cast<uint8_t>(h.dst.value() >> 24);
  d[17] = static_cast<uint8_t>(h.dst.value() >> 16);
  d[18] = static_cast<uint8_t>(h.dst.value() >> 8);
  d[19] = static_cast<uint8_t>(h.dst.value());
  uint16_t csum = Checksum(std::span<const uint8_t>(d, 20));
  d[10] = static_cast<uint8_t>(csum >> 8);
  d[11] = static_cast<uint8_t>(csum & 0xff);
}

size_t BuildIpv4Into(const Ipv4Header& h, std::span<const uint8_t> payload,
                     std::span<uint8_t> out) {
  size_t total = 20 + payload.size();
  MOP_CHECK(out.size() >= total);
  WriteIpv4Header(h, static_cast<uint16_t>(total), out);
  std::copy(payload.begin(), payload.end(), out.begin() + 20);
  return total;
}

std::vector<uint8_t> BuildIpv4(Ipv4Header h, std::span<const uint8_t> payload) {
  std::vector<uint8_t> out(20 + payload.size());
  h.ihl = 5;
  h.total_length = static_cast<uint16_t>(out.size());
  BuildIpv4Into(h, payload, out);
  return out;
}

}  // namespace moppkt
