#include <gtest/gtest.h>

#include "netpkt/checksum.h"
#include "netpkt/dns.h"
#include "netpkt/ip.h"
#include "netpkt/packet.h"
#include "netpkt/tcp.h"
#include "netpkt/udp.h"
#include "util/rng.h"

namespace {

using moppkt::IpAddr;

TEST(IpAddr, ParseAndFormat) {
  auto a = IpAddr::Parse("10.0.0.2");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a.value().ToString(), "10.0.0.2");
  EXPECT_EQ(a.value().value(), 0x0A000002u);
}

TEST(IpAddr, ParseRejectsMalformed) {
  EXPECT_FALSE(IpAddr::Parse("").ok());
  EXPECT_FALSE(IpAddr::Parse("1.2.3").ok());
  EXPECT_FALSE(IpAddr::Parse("1.2.3.4.5").ok());
  EXPECT_FALSE(IpAddr::Parse("256.1.1.1").ok());
  EXPECT_FALSE(IpAddr::Parse("a.b.c.d").ok());
  EXPECT_FALSE(IpAddr::Parse("1..2.3").ok());
}

TEST(IpAddr, ConstexprCtor) {
  constexpr IpAddr a(192, 168, 1, 1);
  EXPECT_EQ(a.ToString(), "192.168.1.1");
}

TEST(Checksum, Rfc1071Example) {
  // Classic example from RFC 1071 §3.
  std::vector<uint8_t> data{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  uint32_t partial = moppkt::ChecksumPartial(data);
  EXPECT_EQ(moppkt::ChecksumFinish(partial), static_cast<uint16_t>(~0xddf2 & 0xffff));
}

TEST(Checksum, OddLengthPads) {
  std::vector<uint8_t> data{0xab};
  EXPECT_EQ(moppkt::Checksum(data), static_cast<uint16_t>(~0xab00 & 0xffff));
}

TEST(Checksum, VerifiesToZero) {
  // Any buffer with its own checksum folded in verifies to 0.
  moputil::Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<uint8_t> data(2 * (2 + rng.UniformInt(0, 20)), 0);
    for (auto& b : data) {
      b = static_cast<uint8_t>(rng.NextU32());
    }
    data[0] = data[1] = 0;
    uint16_t c = moppkt::Checksum(data);
    data[0] = static_cast<uint8_t>(c >> 8);
    data[1] = static_cast<uint8_t>(c & 0xff);
    EXPECT_EQ(moppkt::Checksum(data), 0);
  }
}

TEST(Ipv4, RoundTrip) {
  moppkt::Ipv4Header h;
  h.protocol = 6;
  h.src = IpAddr(10, 0, 0, 2);
  h.dst = IpAddr(93, 2, 3, 4);
  h.identification = 777;
  h.ttl = 63;
  std::vector<uint8_t> payload{1, 2, 3, 4, 5};
  auto pkt = moppkt::BuildIpv4(h, payload);
  auto parsed = moppkt::ParseIpv4(pkt);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().src, h.src);
  EXPECT_EQ(parsed.value().dst, h.dst);
  EXPECT_EQ(parsed.value().identification, 777);
  EXPECT_EQ(parsed.value().ttl, 63);
  EXPECT_EQ(parsed.value().total_length, 25);
  EXPECT_EQ(parsed.value().payload_bytes(), 5u);
}

TEST(Ipv4, RejectsCorruptChecksum) {
  moppkt::Ipv4Header h;
  h.protocol = 17;
  h.src = IpAddr(1, 1, 1, 1);
  h.dst = IpAddr(2, 2, 2, 2);
  auto pkt = moppkt::BuildIpv4(h, {});
  pkt[12] ^= 0xff;
  EXPECT_FALSE(moppkt::ParseIpv4(pkt).ok());
}

TEST(Ipv4, RejectsTruncatedAndBadVersion) {
  std::vector<uint8_t> tiny(10, 0);
  EXPECT_FALSE(moppkt::ParseIpv4(tiny).ok());
  moppkt::Ipv4Header h;
  h.src = IpAddr(1, 1, 1, 1);
  h.dst = IpAddr(2, 2, 2, 2);
  auto pkt = moppkt::BuildIpv4(h, {});
  pkt[0] = 0x65;  // version 6
  EXPECT_FALSE(moppkt::ParseIpv4(pkt).ok());
}

TEST(TcpFlags, RoundTripAndNames) {
  moppkt::TcpFlags f = moppkt::SynAckFlag();
  EXPECT_EQ(moppkt::TcpFlags::FromByte(f.ToByte()), f);
  EXPECT_EQ(f.ToString(), "SYN|ACK");
  EXPECT_EQ(moppkt::TcpFlags{}.ToString(), "none");
}

TEST(Tcp, RoundTripWithOptions) {
  IpAddr src(10, 0, 0, 2), dst(93, 1, 2, 3);
  std::vector<uint8_t> payload{9, 8, 7};
  moppkt::TcpSegmentSpec spec;
  spec.src_port = 40001;
  spec.dst_port = 443;
  spec.seq = 0xdeadbeef;
  spec.ack = 0x01020304;
  spec.flags = moppkt::PshAckFlag();
  spec.window = 31337;
  spec.mss = 1460;
  spec.window_scale = 7;
  spec.payload = payload;
  auto seg_bytes = moppkt::BuildTcp(spec, src, dst);
  auto parsed = moppkt::ParseTcp(seg_bytes, src, dst);
  ASSERT_TRUE(parsed.ok());
  const auto& seg = parsed.value();
  EXPECT_EQ(seg.src_port, 40001);
  EXPECT_EQ(seg.dst_port, 443);
  EXPECT_EQ(seg.seq, 0xdeadbeefu);
  EXPECT_EQ(seg.ack, 0x01020304u);
  EXPECT_EQ(seg.window, 31337);
  ASSERT_TRUE(seg.mss.has_value());
  EXPECT_EQ(*seg.mss, 1460);
  ASSERT_TRUE(seg.window_scale.has_value());
  EXPECT_EQ(*seg.window_scale, 7);
  EXPECT_EQ(std::vector<uint8_t>(seg.payload.begin(), seg.payload.end()), payload);
}

TEST(Tcp, ChecksumCoversPseudoHeader) {
  IpAddr src(10, 0, 0, 2), dst(93, 1, 2, 3);
  moppkt::TcpSegmentSpec spec;
  spec.src_port = 1;
  spec.dst_port = 2;
  spec.flags = moppkt::SynFlag();
  auto bytes = moppkt::BuildTcp(spec, src, dst);
  // Same bytes against different address pair must fail.
  EXPECT_TRUE(moppkt::ParseTcp(bytes, src, dst).ok());
  EXPECT_FALSE(moppkt::ParseTcp(bytes, src, IpAddr(93, 1, 2, 4)).ok());
}

TEST(Tcp, SeqArithmeticWraps) {
  EXPECT_TRUE(moppkt::SeqLt(0xfffffff0u, 0x10u));
  EXPECT_TRUE(moppkt::SeqGt(0x10u, 0xfffffff0u));
  EXPECT_TRUE(moppkt::SeqLe(5u, 5u));
  EXPECT_TRUE(moppkt::SeqGe(5u, 5u));
}

TEST(Udp, RoundTrip) {
  IpAddr src(10, 0, 0, 2), dst(8, 8, 8, 8);
  std::vector<uint8_t> payload{1, 2, 3};
  auto bytes = moppkt::BuildUdp(40002, 53, payload, src, dst);
  auto parsed = moppkt::ParseUdp(bytes, src, dst);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().src_port, 40002);
  EXPECT_EQ(parsed.value().dst_port, 53);
  EXPECT_EQ(parsed.value().payload.size(), 3u);
}

TEST(Udp, RejectsBadChecksum) {
  IpAddr src(10, 0, 0, 2), dst(8, 8, 8, 8);
  auto bytes = moppkt::BuildUdp(1, 2, std::vector<uint8_t>{5, 6}, src, dst);
  bytes.back() ^= 0x55;
  EXPECT_FALSE(moppkt::ParseUdp(bytes, src, dst).ok());
}

TEST(Dns, QueryRoundTrip) {
  auto q = moppkt::DnsMessage::Query(77, "graph.facebook.com");
  auto bytes = moppkt::EncodeDns(q);
  auto decoded = moppkt::DecodeDns(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().id, 77);
  EXPECT_FALSE(decoded.value().is_response);
  ASSERT_EQ(decoded.value().questions.size(), 1u);
  EXPECT_EQ(decoded.value().questions[0].name, "graph.facebook.com");
}

TEST(Dns, AnswerUsesCompression) {
  auto q = moppkt::DnsMessage::Query(5, "mme.whatsapp.net");
  auto a = moppkt::DnsMessage::Answer(q, IpAddr(31, 13, 79, 251), 300);
  auto bytes = moppkt::EncodeDns(a);
  // The answer name must be a 2-byte compression pointer, not a re-encoding.
  auto q_bytes = moppkt::EncodeDns(q);
  EXPECT_LT(bytes.size(), q_bytes.size() + 2 + 2 + 2 + 2 + 4 + 2 + 4 + 4);
  auto decoded = moppkt::DecodeDns(bytes);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded.value().answers.size(), 1u);
  EXPECT_EQ(decoded.value().answers[0].name, "mme.whatsapp.net");
  EXPECT_EQ(decoded.value().answers[0].address, IpAddr(31, 13, 79, 251));
}

TEST(Dns, NxDomain) {
  auto q = moppkt::DnsMessage::Query(6, "nope.invalid");
  auto r = moppkt::DnsMessage::NxDomain(q);
  auto decoded = moppkt::DecodeDns(moppkt::EncodeDns(r));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().rcode, moppkt::DnsRcode::kNxDomain);
  EXPECT_TRUE(decoded.value().answers.empty());
}

TEST(Dns, RejectsTruncatedAndLoops) {
  EXPECT_FALSE(moppkt::DecodeDns(std::vector<uint8_t>{1, 2, 3}).ok());
  // Self-referencing compression pointer at offset 12.
  std::vector<uint8_t> evil{0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0xc0, 12, 0, 1, 0, 1};
  EXPECT_FALSE(moppkt::DecodeDns(evil).ok());
}

TEST(Dns, ValidatesNames) {
  EXPECT_TRUE(moppkt::IsValidDnsName("a.b.c"));
  EXPECT_FALSE(moppkt::IsValidDnsName(""));
  EXPECT_FALSE(moppkt::IsValidDnsName("a..b"));
  EXPECT_FALSE(moppkt::IsValidDnsName(std::string(64, 'x') + ".com"));
  EXPECT_FALSE(moppkt::IsValidDnsName(std::string(254, 'x')));
}

TEST(Packet, ClassifiesTcp) {
  IpAddr src(10, 0, 0, 2), dst(93, 5, 6, 7);
  moppkt::TcpSegmentSpec spec;
  spec.src_port = 40000;
  spec.dst_port = 80;
  spec.flags = moppkt::SynFlag();
  spec.mss = 1460;
  auto dgram = moppkt::BuildTcpDatagram(spec, src, dst);
  auto pkt = moppkt::ParsePacket(std::move(dgram));
  ASSERT_TRUE(pkt.ok());
  EXPECT_TRUE(pkt.value().is_tcp());
  auto flow = pkt.value().flow();
  EXPECT_EQ(flow.local.ToString(), "10.0.0.2:40000");
  EXPECT_EQ(flow.remote.ToString(), "93.5.6.7:80");
  EXPECT_EQ(flow.proto, moppkt::IpProto::kTcp);
}

TEST(Packet, ClassifiesUdp) {
  IpAddr src(10, 0, 0, 2), dst(8, 8, 8, 8);
  auto dgram = moppkt::BuildUdpDatagram(40001, 53, std::vector<uint8_t>{1}, src, dst);
  auto pkt = moppkt::ParsePacket(std::move(dgram));
  ASSERT_TRUE(pkt.ok());
  EXPECT_TRUE(pkt.value().is_udp());
}

TEST(Packet, FlowKeyHashAndEquality) {
  moppkt::FlowKey a, b;
  a.proto = b.proto = moppkt::IpProto::kTcp;
  a.local = b.local = {IpAddr(10, 0, 0, 2), 40000};
  a.remote = b.remote = {IpAddr(93, 5, 6, 7), 80};
  EXPECT_EQ(a, b);
  EXPECT_EQ(moppkt::FlowKeyHash{}(a), moppkt::FlowKeyHash{}(b));
  b.remote.port = 81;
  EXPECT_FALSE(a == b);
}

// Property sweep: TCP build->parse round-trips across payload sizes.
class TcpRoundTrip : public ::testing::TestWithParam<size_t> {};

TEST_P(TcpRoundTrip, PayloadSurvives) {
  size_t n = GetParam();
  moputil::Rng rng(static_cast<uint64_t>(n) + 1);
  std::vector<uint8_t> payload(n);
  for (auto& b : payload) {
    b = static_cast<uint8_t>(rng.NextU32());
  }
  IpAddr src(10, 0, 0, 2), dst(93, 9, 9, 9);
  moppkt::TcpSegmentSpec spec;
  spec.src_port = 1234;
  spec.dst_port = 80;
  spec.seq = rng.NextU32();
  spec.flags = moppkt::PshAckFlag();
  spec.payload = payload;
  auto dgram = moppkt::BuildTcpDatagram(spec, src, dst);
  auto pkt = moppkt::ParsePacket(std::move(dgram));
  ASSERT_TRUE(pkt.ok());
  ASSERT_TRUE(pkt.value().is_tcp());
  EXPECT_EQ(std::vector<uint8_t>(pkt.value().tcp->payload.begin(),
                                 pkt.value().tcp->payload.end()),
            payload);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TcpRoundTrip,
                         ::testing::Values(0, 1, 2, 7, 100, 536, 1000, 1459, 1460));

// Property sweep: random DNS names round-trip with compression.
class DnsRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(DnsRoundTrip, RandomNames) {
  moputil::Rng rng(static_cast<uint64_t>(GetParam()));
  std::string name;
  int labels = static_cast<int>(rng.UniformInt(1, 5));
  for (int i = 0; i < labels; ++i) {
    if (i) {
      name += '.';
    }
    int len = static_cast<int>(rng.UniformInt(1, 20));
    for (int j = 0; j < len; ++j) {
      name += static_cast<char>('a' + rng.UniformInt(0, 25));
    }
  }
  auto q = moppkt::DnsMessage::Query(static_cast<uint16_t>(rng.NextU32()), name);
  auto a = moppkt::DnsMessage::Answer(q, IpAddr(static_cast<uint32_t>(rng.NextU32())));
  auto decoded = moppkt::DecodeDns(moppkt::EncodeDns(a));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().questions[0].name, name);
  EXPECT_EQ(decoded.value().answers[0].name, name);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DnsRoundTrip, ::testing::Range(0, 20));

// Fuzz-ish: random bytes never crash the parsers.
TEST(Packet, RandomBytesNeverCrash) {
  moputil::Rng rng(99);
  for (int trial = 0; trial < 2000; ++trial) {
    size_t n = static_cast<size_t>(rng.UniformInt(0, 120));
    std::vector<uint8_t> junk(n);
    for (auto& b : junk) {
      b = static_cast<uint8_t>(rng.NextU32());
    }
    (void)moppkt::ParsePacket(junk);
    (void)moppkt::DecodeDns(junk);
  }
}

}  // namespace
