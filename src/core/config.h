// MopEye engine configuration.
//
// Every §3 design decision is a knob here so the ablation benches can flip
// exactly one axis at a time:
//   read_mode        — §3.1 blocking tun reads vs ToyVpn/Haystack sleeping
//   write_scheme     — §3.5.1 directWrite vs queueWrite
//   put_scheme       — §3.5.1 oldPut (wait/notify) vs newPut (sleep counter)
//   mapping          — §3.3 naive per-SYN vs cache-based (Haystack) vs lazy
//   timestamp_mode   — §2.4 blocking socket-connect thread vs selector event
//   protect_mode     — §3.5.2 per-socket protect() vs addDisallowedApplication
#ifndef MOPEYE_CORE_CONFIG_H_
#define MOPEYE_CORE_CONFIG_H_

#include <cstdint>
#include <memory>

#include "util/rng.h"
#include "util/time.h"

namespace mopeye {

using moputil::SimDuration;

// Latency/cost models for everything the simulated threads do. Defaults are
// calibrated to a 2016-era flagship (Nexus 6 class), the paper's testbed.
struct CostModels {
  // Wakeup of a blocked thread (futex wake -> running).
  std::shared_ptr<moputil::DelayModel> thread_wake;
  // Spawning a temporary socket-connect thread.
  std::shared_ptr<moputil::DelayModel> thread_spawn;
  // Selector dispatch: event queued -> select() returns in the main loop.
  std::shared_ptr<moputil::DelayModel> selector_dispatch;
  // read() on the tun fd when a packet is available.
  std::shared_ptr<moputil::DelayModel> tun_read_syscall;
  // write() on the tun fd, uncontended.
  std::shared_ptr<moputil::DelayModel> tun_write_syscall;
  // Extra write() tail when several threads hit the same tun fd. With
  // Config::tun_queues > 1 this mixture is the *within-queue* law: a lane
  // samples it only when another writer shares its queue; exclusive queues
  // never draw from it.
  std::shared_ptr<moputil::DelayModel> tun_write_contention;
  // Producer-visible cost of notify() when the consumer sits in wait()
  // (oldPut's 1-5 ms tail, Table 1).
  std::shared_ptr<moputil::DelayModel> queue_notify;
  // Plain enqueue (lock + push) cost.
  std::shared_ptr<moputil::DelayModel> enqueue;
  // One spin-check round of the newPut sleep counter.
  std::shared_ptr<moputil::DelayModel> spin_check;
  // IP/TCP header parse of one tunnel packet.
  std::shared_ptr<moputil::DelayModel> packet_parse;
  // One state-machine step + packet build.
  std::shared_ptr<moputil::DelayModel> sm_process;
  // Socket read()/write() syscall on an external channel.
  std::shared_ptr<moputil::DelayModel> socket_op;
  // Selector register() — the "sometimes very expensive" call of §3.4.
  std::shared_ptr<moputil::DelayModel> selector_register;
  // DNS message parse + UDP socket setup in the DNS thread.
  std::shared_ptr<moputil::DelayModel> dns_process;
  // Marginal cost of each additional packet in a batched (writev-style)
  // tunnel write burst; only sampled when Config::write_batching is on.
  std::shared_ptr<moputil::DelayModel> tun_write_batch_extra;
  // Marginal cost of each additional packet in a batched (readv/recvmmsg
  // style) tunnel read burst; only sampled when Config::tun_read_batch > 1.
  std::shared_ptr<moputil::DelayModel> tun_read_batch_extra;

  static CostModels Default();
};

struct Config {
  enum class TunReadMode {
    kBlocking,       // §3.1: dedicated TunReader thread, fd in blocking mode
    kSleepFixed,     // ToyVpn: sleep a fixed interval between read() batches
    kSleepAdaptive,  // Haystack-style: back off when idle, reset on traffic
  };
  TunReadMode read_mode = TunReadMode::kBlocking;
  SimDuration sleep_interval = moputil::Millis(100);      // kSleepFixed
  SimDuration adaptive_min_sleep = moputil::Millis(1);    // kSleepAdaptive
  SimDuration adaptive_max_sleep = moputil::Millis(100);  // kSleepAdaptive

  enum class WriteScheme { kDirectWrite, kQueueWrite };
  WriteScheme write_scheme = WriteScheme::kQueueWrite;

  enum class PutScheme { kOldPut, kNewPut };
  PutScheme put_scheme = PutScheme::kNewPut;
  // Batched tunnel writes: the TunWriter drains its whole queue in one
  // writev-style submission (one syscall-class cost plus a small marginal
  // cost per extra packet) instead of one write() per packet. Off by
  // default: the paper's tables model per-packet write(), and the checked-in
  // experiment baselines depend on that cost stream.
  bool write_batching = false;
  // Spin rounds before the writer gives up and wait()s (§3.5.1's counter
  // threshold). The window must outlast typical intra-burst packet gaps so
  // producers almost never find the writer parked.
  int newput_spin_rounds = 1500;
  // Fraction of spin wall-time charged as CPU: the check loop yields between
  // rounds, so it shares the core rather than burning it outright.
  double spin_cpu_fraction = 0.35;

  enum class MappingStrategy { kNaivePerSyn, kCacheBased, kLazy };
  MappingStrategy mapping = MappingStrategy::kLazy;
  // Sleep slice a non-parsing socket-connect thread waits for the working
  // thread's results (§3.3 picks 50 ms).
  SimDuration lazy_wait_slice = moputil::Millis(50);

  enum class TimestampMode { kBlockingConnectThread, kSelector };
  TimestampMode timestamp_mode = TimestampMode::kBlockingConnectThread;

  enum class ProtectMode {
    kAuto,           // addDisallowedApplication on SDK >= 21, else per-socket
    kPerSocket,      // always protect() each socket
    kDisallowedApp,  // always addDisallowedApplication (fails on SDK < 21)
  };
  ProtectMode protect_mode = ProtectMode::kAuto;

  // ---- Worker-lane sharding (thread model v2) ----
  // Number of MainWorker lanes the relay engine runs. 1 (the default) is the
  // paper's single-MainWorker model and keeps every checked-in bench baseline
  // byte-identical. With N > 1 the TunReader classifies each packet by
  // FlowKeyHash % N and enqueues it on the owning lane; each lane owns its
  // own selector, TCP-client table, DNS relay state, buffer pool, and
  // measurement shard, so no flow state is ever shared across lanes. The
  // scaled configuration also turns write_batching on (all lanes feed the
  // single TunWriter, and per-packet write() would re-serialize them there).
  int worker_lanes = 1;

  // ---- Burst ingress + work stealing (thread model v3) ----
  // Max packets the TunReader pulls off the tun fd per syscall-class burst
  // (readv/recvmmsg model): one tun_read_syscall plus tun_read_batch_extra
  // per additional packet, then ONE queue push-batch and ONE selector wakeup
  // per lane per burst. 1 (the default) is the paper's per-packet read and
  // keeps every checked-in baseline byte-identical.
  int tun_read_batch = 1;
  // Elephant-flow work stealing: an overloaded lane publishes its hottest
  // TCP flow; the TunReader re-homes that whole flow to the idlest lane via
  // handoff tokens through the read queue, so per-flow FIFO order and the
  // single-lane-per-flow affinity invariant survive — a steal re-homes a
  // flow, it never interleaves one. Off by default (paper model).
  bool steal_enabled = false;
  // Queue depth at which a lane declares itself overloaded and publishes its
  // hottest flow as stealable.
  int steal_queue_threshold = 24;
  // Thread model v3 egress: each MainWorker lane gathers the packets it
  // produced and flushes them with one writev-style gathered write to the
  // tun fd from its own thread (one tun_write_syscall plus
  // tun_write_batch_extra per additional packet, plus a shared-fd
  // tun_write_contention sample per flush), instead of funneling every
  // packet through the single TunWriter actor — whose per-packet marginal
  // drain cost is a global serializer no lane count can beat. Off by
  // default: the paper model routes all writes through §3.5.1's schemes and
  // the checked-in baselines depend on that cost stream.
  bool lane_tun_write = false;

  // ---- Multi-queue tun egress + pure-ACK coalescing (thread model v4) ----
  // Number of independent tun delivery queues (Linux IFF_MULTI_QUEUE model:
  // one fd per queue, each with its own contention domain). 1 (the default)
  // is the single shared fd of the paper and keeps every checked-in baseline
  // byte-identical. With N > 1 each WorkerLane flushes its gathered egress to
  // queue (lane_index % N), so tun_write_contention is sampled only when
  // another lane shares the same queue (lanes <= queues: zero contention;
  // lanes > queues: hashed sharing). Ingress spreads app flows across the
  // queues by flow hash and the TunReader drains them round-robin-burst, so
  // per-flow FIFO order is untouched. Non-lane producers (connect threads,
  // DNS temp threads) keep the §3.5.1 TunWriter on queue 0.
  int tun_queues = 1;
  // Pure-ACK coalescing in the lane gather buffer: before a flush, collapse
  // consecutive same-flow pure ACKs (no payload, no SYN/FIN/RST) into the
  // latest one. TCP ACKs are cumulative, so the app-visible stream is
  // byte-identical — the later ACK's number and window supersede the
  // earlier's. Off by default (paper model; baselines byte-identical).
  bool ack_coalescing = false;

  // Self-measurement plane (moptel): lane-sharded metrics registry, stage
  // histograms, and the per-lane flight recorder. Off (the default) the
  // engine allocates none of it and the relay hot paths pay one untaken
  // branch — all bench baselines stay byte-identical. On, counters cost a
  // plain per-lane uint64_t increment and histograms an add into
  // preallocated buckets (no atomics, locks, or steady-state allocation).
  bool telemetry = false;

  // Cross-tier record tracing: when > 0, every measurement is stamped with a
  // compact TraceContext at creation (device hash, lane, seq, birth time) and
  // records whose trace id falls in a 1/N hash slice ride upload telemetry
  // frames with per-hop span timings (device -> collector -> fold ->
  // durable). 0 (the default) stamps nothing — measurements, CSV output, and
  // the batch wire format are byte-identical to pre-tracing builds.
  uint32_t trace_sample_period = 0;

  // Relay TCP parameters (§3.4).
  uint16_t mss = 1460;
  uint16_t window = 65535;
  // Socket read buffer (and write buffer) per client.
  size_t socket_buffer = 65535;

  bool measure_dns = true;
  bool relay_non_dns_udp = true;

  // ---- Baseline hooks (Haystack emulation) ----
  // Per-packet traffic content inspection cost, charged on the MainWorker for
  // every relayed packet in both directions (null = none; MopEye performs no
  // content inspection, §5).
  std::shared_ptr<moputil::DelayModel> content_inspection;
  // Extra resident memory: per relay client and flat (inspection buffers,
  // caches). Zero for MopEye.
  size_t extra_memory_per_client = 0;
  size_t extra_memory_base = 0;

  CostModels costs = CostModels::Default();
};

}  // namespace mopeye

#endif  // MOPEYE_CORE_CONFIG_H_
