#include "telemetry/flight_recorder.h"

#include <algorithm>
#include <cstdio>

#include "util/logging.h"

namespace moptel {

namespace {
// The recorder whose ring the fatal hook dumps. Plain pointer, written from
// InstallFatalDump / UninstallFatalDump; the dump itself runs once, right
// before abort().
FlightRecorder* g_fatal_recorder = nullptr;

void FatalDumpHook() {
  if (g_fatal_recorder != nullptr) {
    g_fatal_recorder->DumpToStderr();
  }
}
}  // namespace

const char* TraceKindName(TraceKind k) {
  switch (k) {
    case TraceKind::kPacketVerdict:
      return "packet";
    case TraceKind::kConnectOutcome:
      return "connect";
    case TraceKind::kQueueHighWater:
      return "queue";
    case TraceKind::kSnapshot:
      return "snapshot";
    case TraceKind::kAck:
      return "ack";
    case TraceKind::kLifecycle:
      return "lifecycle";
  }
  return "?";
}

FlightRecorder::FlightRecorder(size_t lanes, size_t capacity_per_lane)
    : rings_(lanes == 0 ? 1 : lanes) {
  if (capacity_per_lane == 0) {
    capacity_per_lane = 1;
  }
  for (LaneRing& r : rings_) {
    r.ring.resize(capacity_per_lane);
  }
}

FlightRecorder::~FlightRecorder() {
  if (g_fatal_recorder == this) {
    UninstallFatalDump();
  }
}

std::vector<TraceEvent> FlightRecorder::LaneEvents(size_t lane) const {
  const LaneRing& r = rings_[lane];
  size_t cap = r.ring.size();
  size_t held = r.next < cap ? static_cast<size_t>(r.next) : cap;
  std::vector<TraceEvent> out;
  out.reserve(held);
  uint64_t first = r.next - held;
  for (uint64_t i = first; i < r.next; ++i) {
    out.push_back(r.ring[i % cap]);
  }
  return out;
}

std::vector<TraceEvent> FlightRecorder::MergedEvents() const {
  std::vector<TraceEvent> out;
  for (size_t lane = 0; lane < rings_.size(); ++lane) {
    std::vector<TraceEvent> events = LaneEvents(lane);
    out.insert(out.end(), events.begin(), events.end());
  }
  // Stable: equal timestamps keep lane order, so the merged view is
  // deterministic for tests and diffs. Implemented as an in-place sort with
  // an index tie-break rather than std::stable_sort — this runs inside the
  // fatal-dump path, where the sort's temporary merge buffer is one heap
  // allocation too many on a possibly-corrupted heap.
  std::vector<size_t> order(out.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [&out](size_t a, size_t b) {
    if (out[a].time_ns != out[b].time_ns) {
      return out[a].time_ns < out[b].time_ns;
    }
    return a < b;
  });
  std::vector<TraceEvent> sorted;
  sorted.reserve(out.size());
  for (size_t i : order) {
    sorted.push_back(out[i]);
  }
  return sorted;
}

std::string FlightRecorder::Dump() const {
  std::string out = "=== flight recorder dump ===\n";
  for (size_t lane = 0; lane < rings_.size(); ++lane) {
    out += "lane " + std::to_string(lane) + ": " + std::to_string(LaneRecorded(lane)) +
           " recorded, " + std::to_string(LaneEvents(lane).size()) + " held\n";
  }
  // One chronological stream across lanes: a cross-lane incident reads in
  // causal order instead of ring-by-ring.
  for (const TraceEvent& e : MergedEvents()) {
    char line[176];
    std::snprintf(line, sizeof(line), "  t=%.9fs lane=%u %s %s a=%llu b=%llu\n",
                  static_cast<double>(e.time_ns) * 1e-9, e.lane,
                  TraceKindName(e.kind), e.what,
                  static_cast<unsigned long long>(e.a),
                  static_cast<unsigned long long>(e.b));
    out += line;
  }
  out += "=== end flight recorder dump ===\n";
  return out;
}

std::string FlightRecorder::RenderJson() const {
  std::string out = "[";
  bool first = true;
  for (const TraceEvent& e : MergedEvents()) {
    if (!first) out += ",";
    first = false;
    out += "{\"t_ns\":" + std::to_string(e.time_ns);
    out += ",\"lane\":" + std::to_string(e.lane);
    out += ",\"kind\":\"";
    out += TraceKindName(e.kind);
    out += "\",\"what\":\"";
    out += e.what;  // literal event tags; no chars needing JSON escaping
    out += "\",\"a\":" + std::to_string(e.a);
    out += ",\"b\":" + std::to_string(e.b) + "}";
  }
  out += "]";
  return out;
}

void FlightRecorder::DumpToStderr() const {
  std::string dump = Dump();
  std::fwrite(dump.data(), 1, dump.size(), stderr);
  std::fflush(stderr);
}

void FlightRecorder::InstallFatalDump() {
  g_fatal_recorder = this;
  moputil::SetFatalLogHook(&FatalDumpHook);
}

void FlightRecorder::UninstallFatalDump() {
  g_fatal_recorder = nullptr;
  moputil::SetFatalLogHook(nullptr);
}

}  // namespace moptel
