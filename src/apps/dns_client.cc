#include "apps/dns_client.h"

#include "netpkt/udp.h"
#include "util/logging.h"

namespace mopapps {

TunDnsClient::TunDnsClient(TunNetStack* stack, int uid) : stack_(stack), uid_(uid) {
  MOP_CHECK(stack != nullptr);
}

void TunDnsClient::Resolve(const std::string& domain,
                           std::function<void(moputil::Result<DnsResult>)> cb) {
  auto shared_cb =
      std::make_shared<std::function<void(moputil::Result<DnsResult>)>>(std::move(cb));
  Attempt(domain, 0, shared_cb);
}

void TunDnsClient::Attempt(
    const std::string& domain, int attempt,
    std::shared_ptr<std::function<void(moputil::Result<DnsResult>)>> cb) {
  if (!moppkt::IsValidDnsName(domain)) {
    (*cb)(moputil::InvalidArgument("bad domain name: " + domain));
    return;
  }
  mopdroid::AndroidDevice* dev = stack_->device();
  moppkt::SocketAddr local{dev->tun_address(), stack_->AllocatePort()};
  moppkt::SocketAddr resolver{dev->system_dns(), 53};

  uint16_t query_id = next_id_++;
  moppkt::DnsMessage query = moppkt::DnsMessage::Query(query_id, domain);
  std::vector<uint8_t> payload(moppkt::DnsEncodedSizeBound(query));
  payload.resize(moppkt::EncodeDnsInto(query, payload));

  mopnet::ConnEntry entry;
  entry.proto = moppkt::IpProto::kUdp;
  entry.local = local;
  entry.remote = resolver;
  entry.state = mopnet::ConnState::kEstablished;
  entry.uid = uid_;
  mopnet::ConnHandle handle = dev->conn_table().Register(entry);

  auto done = std::make_shared<bool>(false);
  moputil::SimTime sent_at = stack_->loop()->Now();

  TunNetStack* stack = stack_;
  uint16_t port = local.port;
  auto finish = [stack, port, handle, done](bool) {
    *done = true;
    stack->UnregisterUdp(port);
    stack->device()->conn_table().Unregister(handle);
  };

  stack_->RegisterUdp(
      local.port, [this, cb, done, finish, sent_at, query_id, attempt,
                   domain](const moppkt::ParsedPacket& pkt) {
        if (*done || !pkt.is_udp()) {
          return;
        }
        auto msg = moppkt::DecodeDns(pkt.udp->payload);
        if (!msg.ok() || !msg.value().is_response || msg.value().id != query_id) {
          return;
        }
        finish(true);
        DnsResult result;
        result.latency = stack_->loop()->Now() - sent_at;
        result.retries = attempt;
        if (msg.value().rcode == moppkt::DnsRcode::kNxDomain || msg.value().answers.empty()) {
          result.nxdomain = true;
          (*cb)(result);
          return;
        }
        result.address = msg.value().answers[0].address;
        (*cb)(result);
      });

  // Timeout -> retry with a fresh socket, or give up.
  stack_->loop()->Schedule(timeout_, [this, cb, done, finish, domain, attempt] {
    if (*done) {
      return;
    }
    finish(false);
    if (attempt < max_retries_) {
      Attempt(domain, attempt + 1, cb);
    } else {
      (*cb)(moputil::Unavailable("DNS timeout for " + domain));
    }
  });

  std::vector<uint8_t> datagram =
      moppkt::BuildUdpDatagram(local.port, 53, payload, local.ip, resolver.ip);
  stack_->Send(std::move(datagram));
}

}  // namespace mopapps
