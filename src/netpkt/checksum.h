// RFC 1071 Internet checksum, plus the TCP/UDP pseudo-header variant.
#ifndef MOPEYE_NETPKT_CHECKSUM_H_
#define MOPEYE_NETPKT_CHECKSUM_H_

#include <cstdint>
#include <span>

namespace moppkt {

class IpAddr;

// One's-complement sum over `data`, not yet folded or inverted. `initial`
// allows chaining across discontiguous regions.
uint32_t ChecksumPartial(std::span<const uint8_t> data, uint32_t initial = 0);

// Folds carries and inverts: the final 16-bit Internet checksum.
uint16_t ChecksumFinish(uint32_t partial);

// Checksum of a single contiguous buffer.
uint16_t Checksum(std::span<const uint8_t> data);

// Pseudo-header contribution for TCP/UDP checksums (RFC 793 / RFC 768).
uint32_t PseudoHeaderSum(const IpAddr& src, const IpAddr& dst, uint8_t protocol,
                         uint16_t l4_length);

}  // namespace moppkt

#endif  // MOPEYE_NETPKT_CHECKSUM_H_
