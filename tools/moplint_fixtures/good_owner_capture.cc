// moplint fixture: safe callback wiring that must NOT be flagged.
#include <functional>
#include <memory>

struct Chan {
  std::function<void()> on_data;
};

struct Owner {
  std::shared_ptr<Chan> chan;
  void Wire() {
    // Raw `this` capture into a channel we own: no shared_ptr cycle.
    chan->on_data = [this] { (void)this; };
  }
  void WireWeak(const std::shared_ptr<Owner>& self) {
    // Weak capture: the sanctioned pattern for callbacks that may outlive us.
    chan->on_data = [weak = std::weak_ptr<Owner>(self)] {
      if (auto s = weak.lock()) {
        (void)s;
      }
    };
  }
};

void Transient(const std::shared_ptr<Chan>& chan, std::function<void()>& run_once) {
  // Copy-capture into a transient argument (not a member of the captured
  // object): fine.
  run_once = [chan] { (void)chan; };
}
