// google-benchmark micro benches over the relay's hot paths: packet
// parse/build, checksums, DNS codec, the TCP state machine, and the
// real-thread queue algorithms (oldPut vs newPut) under contention.
#include <benchmark/benchmark.h>

#include <thread>

#include "concurrent/packet_queue.h"
#include "concurrent/spsc_ring.h"
#include "core/tcp_state_machine.h"
#include "netpkt/checksum.h"
#include "netpkt/dns.h"
#include "netpkt/packet.h"
#include "netpkt/tcp.h"
#include "util/rng.h"

namespace {

moppkt::FlowKey BenchFlow() {
  moppkt::FlowKey f;
  f.local = {moppkt::IpAddr(10, 0, 0, 2), 40000};
  f.remote = {moppkt::IpAddr(93, 1, 2, 3), 443};
  return f;
}

void BM_ChecksumPayload(benchmark::State& state) {
  std::vector<uint8_t> data(static_cast<size_t>(state.range(0)), 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(moppkt::Checksum(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_ChecksumPayload)->Arg(64)->Arg(1460);

void BM_BuildTcpDatagram(benchmark::State& state) {
  std::vector<uint8_t> payload(static_cast<size_t>(state.range(0)), 0x42);
  moppkt::TcpSegmentSpec spec;
  spec.src_port = 443;
  spec.dst_port = 40000;
  spec.seq = 1;
  spec.ack = 2;
  spec.flags = moppkt::PshAckFlag();
  spec.payload = payload;
  moppkt::IpAddr src(93, 1, 2, 3), dst(10, 0, 0, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(moppkt::BuildTcpDatagram(spec, src, dst));
  }
}
BENCHMARK(BM_BuildTcpDatagram)->Arg(0)->Arg(1460);

void BM_ParsePacket(benchmark::State& state) {
  std::vector<uint8_t> payload(static_cast<size_t>(state.range(0)), 0x42);
  moppkt::TcpSegmentSpec spec;
  spec.src_port = 40000;
  spec.dst_port = 443;
  spec.flags = moppkt::PshAckFlag();
  spec.payload = payload;
  auto pkt = moppkt::BuildTcpDatagram(spec, moppkt::IpAddr(10, 0, 0, 2),
                                      moppkt::IpAddr(93, 1, 2, 3));
  for (auto _ : state) {
    auto copy = pkt;
    benchmark::DoNotOptimize(moppkt::ParsePacket(std::move(copy)));
  }
}
BENCHMARK(BM_ParsePacket)->Arg(0)->Arg(1460);

void BM_DnsEncodeDecode(benchmark::State& state) {
  auto query = moppkt::DnsMessage::Query(1234, "graph.facebook.com");
  for (auto _ : state) {
    auto bytes = moppkt::EncodeDns(query);
    benchmark::DoNotOptimize(moppkt::DecodeDns(bytes));
  }
}
BENCHMARK(BM_DnsEncodeDecode);

void BM_TcpStateMachineRelay(benchmark::State& state) {
  // One full handshake + data exchange per iteration.
  std::vector<uint8_t> payload(1460, 0x55);
  for (auto _ : state) {
    mopeye::TcpStateMachine sm(BenchFlow(), 5000, 1460, 65535);
    moppkt::TcpSegment syn;
    syn.src_port = 40000;
    syn.dst_port = 443;
    syn.flags = moppkt::SynFlag();
    syn.seq = 100;
    syn.mss = 1460;
    sm.NoteSyn(syn);
    benchmark::DoNotOptimize(sm.MakeSynAck());
    moppkt::TcpSegment ack;
    ack.flags = moppkt::AckFlag();
    ack.seq = 101;
    ack.ack = 5001;
    benchmark::DoNotOptimize(sm.OnAppSegment(ack));
    moppkt::TcpSegment data;
    data.flags = moppkt::PshAckFlag();
    data.seq = 101;
    data.ack = 5001;
    data.payload = payload;
    benchmark::DoNotOptimize(sm.OnAppSegment(data));
    benchmark::DoNotOptimize(sm.MakeData(payload));
  }
}
BENCHMARK(BM_TcpStateMachineRelay);

// Real-thread producer put() cost with a live consumer: the Table 1
// algorithms under genuine contention.
void BM_QueuePut(benchmark::State& state) {
  mopcc::PutMode mode =
      state.range(0) == 0 ? mopcc::PutMode::kOldPut : mopcc::PutMode::kNewPut;
  mopcc::PacketQueue<int> q(mode, 20000);
  std::thread consumer([&q] {
    while (q.Take().has_value()) {
    }
  });
  int i = 0;
  for (auto _ : state) {
    q.Put(i++);
  }
  state.counters["consumer_waits"] = static_cast<double>(q.waits());
  q.Stop();
  consumer.join();
}
BENCHMARK(BM_QueuePut)->Arg(0)->Arg(1)->ArgNames({"newput"});

void BM_SpscRingPushPop(benchmark::State& state) {
  mopcc::SpscRing<int> ring(4096);
  std::atomic<bool> stop{false};
  std::thread consumer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      benchmark::DoNotOptimize(ring.Pop());
    }
    while (ring.Pop().has_value()) {
    }
  });
  int i = 0;
  for (auto _ : state) {
    while (!ring.Push(i)) {
      std::this_thread::yield();
    }
    ++i;
  }
  stop.store(true, std::memory_order_release);
  consumer.join();
}
BENCHMARK(BM_SpscRingPushPop);

}  // namespace

BENCHMARK_MAIN();
