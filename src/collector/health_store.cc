#include "collector/health_store.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <limits>

#include "util/hash.h"

namespace mopcollect {

namespace {

// Wrap-aware "a is fresher than b" for u32 frame seqs (uploaders start at a
// random seq, so absolute comparison would be wrong across the wrap).
bool SeqNewer(uint32_t a, uint32_t b) { return static_cast<int32_t>(a - b) > 0; }

void AppendU64(std::string* out, uint64_t v) { out->append(std::to_string(v)); }

void AppendDouble(std::string* out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out->append(buf);
}

// Rebuilds the exact log-bucket sketch from a crowd histogram metric.
// Per-bucket counts are clamped at u32 (the sketch's cell width); a fleet
// would need >4B observations in one bucket to see the clamp.
moputil::LogQuantile RebuildSketch(const HealthStore::Metric& m) {
  moputil::LogQuantile::State st;
  st.zero_or_less = m.zero_or_less;
  if (!m.buckets.empty()) {
    int32_t lo = m.buckets.begin()->first;
    int32_t hi = m.buckets.rbegin()->first;
    st.lo_index = lo;
    st.counts.assign(static_cast<size_t>(hi - lo) + 1, 0);
    for (const auto& [idx, count] : m.buckets) {
      st.counts[static_cast<size_t>(idx - lo)] = static_cast<uint32_t>(
          std::min<uint64_t>(count, std::numeric_limits<uint32_t>::max()));
    }
  }
  st.total = st.zero_or_less;
  for (uint32_t c : st.counts) st.total += c;
  moputil::LogQuantile out(m.rel_err > 0 ? m.rel_err : 0.02);
  out.Restore(std::move(st));
  return out;
}

}  // namespace

std::string CrowdMetricName(std::string_view device_metric) {
  constexpr std::string_view kPrefix = "mopeye_";
  std::string out = "mopeye_crowd_";
  if (device_metric.substr(0, kPrefix.size()) == kPrefix) {
    device_metric.remove_prefix(kPrefix.size());
  }
  out.append(device_metric);
  return out;
}

uint64_t HealthStore::Metric::GaugeValue() const {
  uint64_t out = 0;
  for (const auto& [device, cell] : gauges) {
    out = merge == 1 ? std::max(out, cell.value) : out + cell.value;
  }
  return out;
}

uint64_t HealthStore::Metric::HistCount() const {
  uint64_t n = zero_or_less;
  for (const auto& [idx, count] : buckets) n += count;
  return n;
}

HealthStore::HealthStore(size_t shards) : shards_(shards == 0 ? 1 : shards) {}

HealthStore::Shard& HealthStore::ShardOf(std::string_view name) {
  return shards_[moputil::Mix64(std::hash<std::string_view>{}(name)) % shards_.size()];
}

const HealthStore::Shard& HealthStore::ShardOf(std::string_view name) const {
  return shards_[moputil::Mix64(std::hash<std::string_view>{}(name)) % shards_.size()];
}

void HealthStore::Fold(const WireTelemetry& t) {
  ++folds_;
  for (const WireHealthEntry& e : t.health) {
    FoldEntry(t.device_id, t.seq, e);
  }
}

void HealthStore::FoldEntry(uint32_t device_id, uint32_t seq, const WireHealthEntry& e) {
  devices_.insert(device_id);
  Shard& shard = ShardOf(e.name);
  auto it = shard.metrics.find(e.name);
  if (it == shard.metrics.end()) {
    Metric m;
    m.kind = e.kind;
    m.merge = e.merge;
    m.rel_err = e.rel_err;
    it = shard.metrics.emplace(e.name, std::move(m)).first;
  }
  Metric& m = it->second;
  if (m.kind != e.kind || (m.kind == 1 && m.merge != e.merge) ||
      (m.kind == 2 && e.rel_err > 0 && m.rel_err > 0 && m.rel_err != e.rel_err)) {
    // A device disagreeing with the crowd on a metric's shape must not
    // corrupt the rollup; drop the entry and count the conflict.
    ++conflicts_;
    return;
  }
  switch (m.kind) {
    case 0:
      m.counter += e.value;
      break;
    case 1: {
      auto g = m.gauges.find(device_id);
      if (g == m.gauges.end()) {
        m.gauges.emplace(device_id, GaugeCell{seq, e.value});
      } else if (SeqNewer(seq, g->second.seq)) {
        g->second = GaugeCell{seq, e.value};
      }
      break;
    }
    case 2:
      if (m.rel_err == 0) m.rel_err = e.rel_err;
      m.sum += e.sum;
      m.zero_or_less += e.zero_or_less;
      for (const auto& [idx, count] : e.buckets) {
        m.buckets[idx] += count;
      }
      break;
    default:
      ++conflicts_;
      break;
  }
}

void HealthStore::MergeFrom(const HealthStore& o) {
  for (const Shard& os : o.shards_) {
    for (const auto& [name, om] : os.metrics) {
      Shard& shard = ShardOf(name);
      auto it = shard.metrics.find(name);
      if (it == shard.metrics.end()) {
        shard.metrics.emplace(name, om);
        continue;
      }
      Metric& m = it->second;
      if (m.kind != om.kind) {
        ++conflicts_;
        continue;
      }
      switch (m.kind) {
        case 0:
          m.counter += om.counter;
          break;
        case 1:
          for (const auto& [device, cell] : om.gauges) {
            auto g = m.gauges.find(device);
            if (g == m.gauges.end()) {
              m.gauges.emplace(device, cell);
            } else if (SeqNewer(cell.seq, g->second.seq)) {
              g->second = cell;
            }
          }
          break;
        case 2:
          if (m.rel_err == 0) m.rel_err = om.rel_err;
          m.sum += om.sum;
          m.zero_or_less += om.zero_or_less;
          for (const auto& [idx, count] : om.buckets) {
            m.buckets[idx] += count;
          }
          break;
        default:
          break;
      }
    }
  }
  devices_.insert(o.devices_.begin(), o.devices_.end());
  folds_ += o.folds_;
  conflicts_ += o.conflicts_;
}

const HealthStore::Metric* HealthStore::Find(std::string_view name) const {
  const Shard& shard = ShardOf(name);
  auto it = shard.metrics.find(std::string(name));
  return it == shard.metrics.end() ? nullptr : &it->second;
}

bool HealthStore::CounterValue(std::string_view name, uint64_t* out) const {
  const Metric* m = Find(name);
  if (m == nullptr || m->kind != 0) return false;
  *out = m->counter;
  return true;
}

bool HealthStore::GaugeValue(std::string_view name, uint64_t* out) const {
  const Metric* m = Find(name);
  if (m == nullptr || m->kind != 1) return false;
  *out = m->GaugeValue();
  return true;
}

bool HealthStore::HistQuantile(std::string_view name, double percentile, double* out) const {
  const Metric* m = Find(name);
  if (m == nullptr || m->kind != 2 || m->HistCount() == 0) return false;
  *out = RebuildSketch(*m).Quantile(percentile);
  return true;
}

std::vector<std::pair<const std::string*, const HealthStore::Metric*>>
HealthStore::SortedMetrics() const {
  std::vector<std::pair<const std::string*, const Metric*>> out;
  out.reserve(metric_count());
  for (const Shard& s : shards_) {
    for (const auto& [name, m] : s.metrics) {
      out.emplace_back(&name, &m);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return *a.first < *b.first; });
  return out;
}

void HealthStore::RestoreMetric(const std::string& name, Metric m) {
  ShardOf(name).metrics.insert_or_assign(name, std::move(m));
}

size_t HealthStore::metric_count() const {
  size_t n = 0;
  for (const Shard& s : shards_) n += s.metrics.size();
  return n;
}

std::string HealthStore::RenderText() const {
  std::string out;
  out += "# HELP mopeye_crowd_devices devices that contributed health telemetry\n";
  out += "# TYPE mopeye_crowd_devices gauge\nmopeye_crowd_devices ";
  AppendU64(&out, devices_.size());
  out += "\n# HELP mopeye_crowd_health_metrics distinct crowd health metrics\n";
  out += "# TYPE mopeye_crowd_health_metrics gauge\nmopeye_crowd_health_metrics ";
  AppendU64(&out, metric_count());
  out += "\n# HELP mopeye_crowd_health_folds telemetry frames folded\n";
  out += "# TYPE mopeye_crowd_health_folds counter\nmopeye_crowd_health_folds ";
  AppendU64(&out, folds_);
  out += "\n# HELP mopeye_crowd_health_conflicts health entries dropped on shape mismatch\n";
  out += "# TYPE mopeye_crowd_health_conflicts counter\nmopeye_crowd_health_conflicts ";
  AppendU64(&out, conflicts_);
  out += "\n";
  for (const auto& [name, m] : SortedMetrics()) {
    std::string crowd = CrowdMetricName(*name);
    out += "# HELP " + crowd + " crowd rollup of device metric " + *name + "\n";
    switch (m->kind) {
      case 0:
        out += "# TYPE " + crowd + " counter\n" + crowd + " ";
        AppendU64(&out, m->counter);
        out += "\n";
        break;
      case 1:
        out += "# TYPE " + crowd + " gauge\n" + crowd + " ";
        AppendU64(&out, m->GaugeValue());
        out += "\n" + crowd + "_devices ";
        AppendU64(&out, m->gauges.size());
        out += "\n";
        break;
      case 2: {
        out += "# TYPE " + crowd + " summary\n";
        uint64_t count = m->HistCount();
        if (count > 0) {
          moputil::LogQuantile sketch = RebuildSketch(*m);
          for (double q : {0.5, 0.95, 0.99}) {
            out += crowd + "{quantile=\"";
            AppendDouble(&out, q);
            out += "\"} ";
            AppendDouble(&out, sketch.Quantile(q * 100.0));
            out += "\n";
          }
        }
        out += crowd + "_sum ";
        AppendDouble(&out, m->sum);
        out += "\n" + crowd + "_count ";
        AppendU64(&out, count);
        out += "\n";
        break;
      }
      default:
        break;
    }
  }
  return out;
}

}  // namespace mopcollect
