// Shared helpers for the experiment binaries: paper-vs-measured tables and
// dataset construction flags.
//
// Every bench accepts:
//   --scale=<f>   crowd-study scale factor (1.0 = the full 5.25M-record
//                 dataset; smaller for quick runs)
//   --seed=<n>    RNG seed
//   --lanes=<n>   engine worker-lane sweep (table3/table4 only): run the
//                 relay-scaling section with Config::worker_lanes = n.
//                 Unset (0) keeps the default paper-model output unchanged,
//                 so the checked-in baselines never see this section.
//   --tun-queues=<n>  with --lanes: run the sweep with Config::tun_queues = n
//                 and pure-ACK coalescing on (thread model v4). Unset (0)
//                 keeps the single shared tun fd of thread model v3.
#ifndef MOPEYE_BENCH_BENCH_UTIL_H_
#define MOPEYE_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "crowd/analysis.h"
#include "crowd/study.h"
#include "crowd/world.h"
#include "util/strings.h"
#include "util/table.h"

namespace mopbench {

struct Flags {
  double scale = 1.0;
  uint64_t seed = 20160516;
  int lanes = 0;  // 0 = flag not given; benches keep their default output
  int tun_queues = 0;  // 0 = flag not given; sweep keeps the shared fd (v3)
  // table3 --lanes mode: write the final sweep run's stage-histogram summary
  // (count/sum/p50/p95/p99 per stage) as JSON here, for tools/perf_gate.py.
  std::string stage_json;
};

inline Flags ParseFlags(int argc, char** argv) {
  Flags f;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--scale=", 8) == 0) {
      f.scale = std::atof(arg + 8);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      f.seed = static_cast<uint64_t>(std::atoll(arg + 7));
    } else if (std::strncmp(arg, "--lanes=", 8) == 0) {
      f.lanes = std::atoi(arg + 8);
    } else if (std::strncmp(arg, "--tun-queues=", 13) == 0) {
      f.tun_queues = std::atoi(arg + 13);
    } else if (std::strncmp(arg, "--stage-json=", 13) == 0) {
      f.stage_json = arg + 13;
    } else if (std::strcmp(arg, "--help") == 0) {
      std::printf(
          "flags: --scale=<f> --seed=<n> --lanes=<n> --tun-queues=<n> --stage-json=<path>\n");
      std::exit(0);
    }
  }
  return f;
}

inline mopcrowd::CrowdDataset RunStudy(const mopcrowd::World& world, const Flags& flags) {
  mopcrowd::StudyConfig cfg;
  cfg.scale = flags.scale;
  cfg.seed = flags.seed;
  mopcrowd::Study study(&world, cfg);
  std::printf("[study] generating dataset (scale=%.2f, seed=%llu)...\n", flags.scale,
              static_cast<unsigned long long>(flags.seed));
  auto ds = study.Run();
  std::printf("[study] %s measurements from %zu devices\n",
              moputil::WithCommas(static_cast<int64_t>(ds.size())).c_str(),
              ds.devices().size());
  return ds;
}

inline std::string Pct(double frac) { return moputil::StrFormat("%.1f%%", frac * 100.0); }
inline std::string Ms(double v) { return moputil::StrFormat("%.1fms", v); }
inline std::string Num(double v) { return moputil::StrFormat("%.2f", v); }

inline void PrintHeader(const char* id, const char* title) {
  std::printf("\n==== %s — %s ====\n\n", id, title);
}

}  // namespace mopbench

#endif  // MOPEYE_BENCH_BENCH_UTIL_H_
