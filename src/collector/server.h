// The MopEye collector: the server half of the paper's crowdsourcing loop.
//
// One CollectorServer registers at an address on a mopnet::ServerFarm and
// accepts concurrent device connections (each accepted connection gets its
// own frame reassembler). Uploaded batches are decoded, remapped from the
// per-batch wire string tables onto global interners, and folded into the
// sharded AggregateStore — per record it updates the fine-grained key plus
// the per-app and per-ISP rollups, so Fig. 9 / Fig. 11 / Table 6 style
// queries are O(keys), not O(records). Malformed input never crashes the
// collector: the batch is rejected with an error ack and the connection is
// reset.
//
// For analyses that need raw records (and for validating the sketches
// against exact recomputation), `retain_records` additionally accumulates a
// mopcrowd::CrowdDataset, so every mopcrowd analysis runs unchanged against
// live-ingested data.
#ifndef MOPEYE_COLLECTOR_SERVER_H_
#define MOPEYE_COLLECTOR_SERVER_H_

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "collector/aggregate_store.h"
#include "collector/wire.h"
#include "crowd/dataset.h"
#include "net/server.h"
#include "util/status.h"

namespace mopcollect {

struct CollectorOptions {
  size_t shards = 16;
  // Also keep raw records as a CrowdDataset (exact recomputation / full
  // mopcrowd analyses). Off by default: the aggregate path is the product.
  bool retain_records = false;
};

class CollectorServer {
 public:
  struct Counters {
    uint64_t connections = 0;
    uint64_t frames = 0;
    uint64_t batches_ok = 0;
    uint64_t batches_rejected = 0;
    uint64_t batches_duplicate = 0;  // re-deliveries acked without ingesting
    uint64_t records_ingested = 0;
    uint64_t stream_errors = 0;  // framing violations (oversized prefix, ...)
  };

  // Bounds of the duplicate-delivery state (see seen_batches_ below).
  static constexpr size_t kSeenBatchWindow = 1024;
  static constexpr size_t kMaxTrackedDevices = 1 << 16;

  explicit CollectorServer(CollectorOptions opts = CollectorOptions());

  // Serves at `addr`. The server must outlive the farm registration (and any
  // in-flight connections); connections hold a plain pointer back here.
  void RegisterWith(mopnet::ServerFarm* farm, const moppkt::SocketAddr& addr);

  // Ingests one decoded batch unconditionally (no duplicate-delivery check;
  // tests and the ingest bench may call it directly).
  void IngestBatch(const WireBatch& batch);
  // Decode + ingest one frame payload; returns the number of records
  // accepted, or an error Status on malformed payloads (nothing ingested).
  // A (device_id, batch_seq) pair seen before is acked as accepted but not
  // folded again — the uploader re-sends the identical frame when an ack is
  // lost, and at-least-once delivery must not double-count records.
  moputil::Result<uint32_t> IngestPayload(std::span<const uint8_t> payload);

  const Counters& counters() const { return counters_; }
  const AggregateStore& store() const { return store_; }
  const Interner& apps() const { return apps_; }
  const Interner& isps() const { return isps_; }
  const Interner& countries() const { return countries_; }

  // Retained raw records (empty unless CollectorOptions::retain_records).
  const mopcrowd::CrowdDataset& dataset() const { return dataset_; }

  // ---- Queries over the streaming aggregates ----

  struct AppStat {
    std::string app;
    size_t count = 0;
    double median_ms = 0;
    double p95_ms = 0;
    double mean_ms = 0;
  };
  // Fig. 9-style per-app TCP RTT stats (all networks folded), apps with at
  // least `min_count` records, sorted by count descending.
  std::vector<AppStat> TcpAppStats(size_t min_count = 1) const;

  struct IspDnsStat {
    std::string isp;
    uint8_t net_type = 0;
    size_t count = 0;
    double median_ms = 0;
    double p95_ms = 0;
  };
  // Fig. 11 / Table 6-style per-(ISP, net type) DNS stats, sorted by count
  // descending.
  std::vector<IspDnsStat> IspDnsStats(size_t min_count = 1) const;

 private:
  class Behavior;

  CollectorOptions opts_;
  AggregateStore store_;
  Interner apps_, isps_, countries_;
  Counters counters_;
  mopcrowd::CrowdDataset dataset_;
  // device_id -> index into dataset_.devices() (retain mode only).
  std::unordered_map<uint32_t, size_t> device_index_;

  // Duplicate-delivery state, bounded on both axes so hostile (device_id,
  // batch_seq) churn cannot exhaust collector memory: per device only the
  // most recent kSeenBatchWindow sequence numbers are remembered (uploaders
  // deliver sequentially, so a re-delivery is always recent), and at most
  // kMaxTrackedDevices devices are tracked (arbitrary eviction beyond that;
  // an evicted device's re-delivery degrades to a double-count, not OOM).
  struct SeenBatches {
    std::unordered_set<uint32_t> set;
    std::deque<uint32_t> order;  // insertion order for window eviction
  };

  // True if (device, seq) was already recorded; records it otherwise.
  bool CheckAndRecordDelivery(uint32_t device, uint32_t seq);

  std::unordered_map<uint32_t, SeenBatches> seen_batches_;
};

}  // namespace mopcollect

#endif  // MOPEYE_COLLECTOR_SERVER_H_
