#include "android/proc_net.h"

#include <cstdio>
#include <sstream>

#include "util/logging.h"
#include "util/strings.h"

namespace mopdroid {

namespace {

// The kernel prints the 32-bit network-order address as little-endian hex:
// 10.0.0.2 -> "0200000A".
std::string AddrHex(const moppkt::SocketAddr& a) {
  uint32_t v = a.ip.value();
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%02X%02X%02X%02X:%04X", v & 0xff, (v >> 8) & 0xff,
                (v >> 16) & 0xff, (v >> 24) & 0xff, a.port);
  return buf;
}

bool ParseAddrHex(std::string_view s, moppkt::SocketAddr* out) {
  auto colon = s.find(':');
  if (colon == std::string_view::npos || colon != 8 || s.size() < 13) {
    return false;
  }
  uint64_t ip_le = 0;
  uint64_t port = 0;
  if (!moputil::ParseHexU64(s.substr(0, 8), &ip_le) ||
      !moputil::ParseHexU64(s.substr(9, 4), &port)) {
    return false;
  }
  uint32_t le = static_cast<uint32_t>(ip_le);
  uint32_t host = ((le & 0xff) << 24) | ((le & 0xff00) << 8) | ((le >> 8) & 0xff00) |
                  ((le >> 24) & 0xff);
  out->ip = moppkt::IpAddr(host);
  out->port = static_cast<uint16_t>(port);
  return true;
}

}  // namespace

ProcParseCostModel ProcParseCostModel::Default() {
  ProcParseCostModel m;
  // Calibrated to Fig. 5(a): with the ~40-80 rows of a browsing session the
  // parse lands mostly in 5-12 ms with a >15 ms tail.
  m.base = std::make_shared<moputil::LogNormalDelay>(moputil::Millis(4.2), 0.35,
                                                     moputil::Millis(1.5));
  m.per_row = std::make_shared<moputil::LogNormalDelay>(moputil::Micros(55), 0.30,
                                                        moputil::Micros(15));
  m.spike = std::make_shared<moputil::MixtureDelay>(std::vector<moputil::MixtureDelay::Component>{
      {0.86, std::make_shared<moputil::FixedDelay>(0)},
      {0.10, std::make_shared<moputil::UniformDelay>(moputil::Millis(4), moputil::Millis(10))},
      {0.04, std::make_shared<moputil::UniformDelay>(moputil::Millis(10), moputil::Millis(22))},
  });
  return m;
}

moputil::SimDuration ProcParseCostModel::Sample(size_t rows, moputil::Rng& rng) const {
  moputil::SimDuration d = 0;
  if (base) {
    d += base->Sample(rng);
  }
  if (per_row) {
    for (size_t i = 0; i < rows; ++i) {
      d += per_row->Sample(rng);
    }
  }
  if (spike) {
    d += spike->Sample(rng);
  }
  return d;
}

ProcNet::ProcNet(const mopnet::KernelConnTable* table)
    : table_(table), cost_(ProcParseCostModel::Default()) {
  MOP_CHECK(table != nullptr);
}

std::string ProcNet::Render(moppkt::IpProto proto) const {
  std::ostringstream os;
  os << "  sl  local_address rem_address   st tx_queue rx_queue tr tm->when retrnsmt"
        "   uid  timeout inode\n";
  auto entries = table_->Snapshot(proto);
  int sl = 0;
  for (const auto& e : entries) {
    char line[256];
    std::snprintf(line, sizeof(line),
                  "%4d: %s %s %02X %08X:%08X %02X:%08lX %08X %5d %8d %lu\n", sl++,
                  AddrHex(e.local).c_str(), AddrHex(e.remote).c_str(),
                  static_cast<unsigned>(e.state), 0u, 0u, 0u, 0ul, 0u, e.uid, 0,
                  static_cast<unsigned long>(e.inode));
    os << line;
  }
  return os.str();
}

size_t ProcNet::RowCount(moppkt::IpProto proto) const {
  return table_->Snapshot(proto).size();
}

moputil::SimDuration ProcNet::SampleParseCost(moppkt::IpProto proto, moputil::Rng& rng) const {
  // MopEye reads tcp6 then tcp (or udp6 then udp); rows split across both but
  // the per-row work is the same, plus a second file's base overhead at
  // roughly half weight (tcp6 is usually short).
  size_t rows = RowCount(proto);
  moputil::SimDuration d = cost_.Sample(rows, rng);
  if (cost_.base) {
    d += cost_.base->Sample(rng) / 2;
  }
  return d;
}

moputil::Result<std::vector<ProcNetEntry>> ParseProcNet(const std::string& text) {
  std::vector<ProcNetEntry> entries;
  std::istringstream is(text);
  std::string line;
  bool first = true;
  while (std::getline(is, line)) {
    if (first) {  // header
      first = false;
      continue;
    }
    auto trimmed = moputil::Trim(line);
    if (trimmed.empty()) {
      continue;
    }
    // "%4d: local rem st ... uid timeout inode"
    std::istringstream ls{std::string(trimmed)};
    std::string sl, local, remote, st, queues, timer, retrnsmt, uid_s, timeout_s, inode_s;
    if (!(ls >> sl >> local >> remote >> st >> queues >> timer >> retrnsmt >> uid_s)) {
      return moputil::InvalidArgument("bad /proc/net row: " + line);
    }
    ProcNetEntry e;
    if (!ParseAddrHex(local, &e.local) || !ParseAddrHex(remote, &e.remote)) {
      return moputil::InvalidArgument("bad /proc/net address: " + line);
    }
    uint64_t st_v = 0;
    if (!moputil::ParseHexU64(st, &st_v)) {
      return moputil::InvalidArgument("bad /proc/net state: " + line);
    }
    e.state = static_cast<mopnet::ConnState>(st_v);
    e.uid = std::atoi(uid_s.c_str());
    entries.push_back(e);
  }
  return entries;
}

}  // namespace mopdroid
