// The TUN virtual network device (/dev/tun) behind Android's VpnService.
//
// A TUN device is a virtual point-to-point IP link (paper §2.2): the kernel
// routes every app's IP datagrams into it, and whatever the VPN app writes
// back is injected into the kernel as if received from a network. This model
// keeps the fd semantics that drive the paper's §3.1 problem: reads either
// block until a packet arrives or return "no packet" immediately (forcing
// user-space polling). Writers are queue-sharded (thread model v4): the
// device exposes N independent delivery queues à la Linux multiqueue tun
// (IFF_MULTI_QUEUE — one fd per queue), each its own contention domain, so
// write contention exists only *within* a queue. N = 1 (the default) is the
// single shared fd of the paper, which every checked-in baseline models.
#ifndef MOPEYE_ANDROID_TUN_DEVICE_H_
#define MOPEYE_ANDROID_TUN_DEVICE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "concurrent/lane_affinity.h"
#include "netpkt/packet_buf.h"
#include "sim/event_loop.h"
#include "util/time.h"

namespace mopdroid {

using moputil::SimDuration;
using moputil::SimTime;

class TunDevice {
 public:
  explicit TunDevice(mopsim::EventLoop* loop);

  // ---- Queue setup (thread model v4) ----
  // Attaches `queues` fds to the device (IFF_MULTI_QUEUE). Must happen
  // before any traffic: existing queued packets would have been classified
  // under the old queue count. 1 keeps the single-fd model byte-identical.
  void ConfigureQueues(size_t queues);
  size_t queue_count() const { return outgoing_.size(); }

  // ---- App/kernel side ----
  // The kernel routes an app datagram into the tunnel (the flow's queue fd
  // becomes readable for the VPN app). Flows are spread across queues by
  // flow hash — a flow sticks to one queue, so per-flow FIFO order holds.
  // The pooled overload is the zero-copy path; the vector overload copies
  // into a pooled slab at the boundary.
  void InjectOutgoing(moppkt::PacketBuf datagram);
  void InjectOutgoing(std::vector<uint8_t> datagram);
  // Fired at the exact instant a datagram is injected; the VPN app's reader
  // uses this to model blocking-read wakeups.
  std::function<void()> on_outgoing_ready;
  // Datagrams the VPN app wrote back are handed to the kernel, which
  // delivers them to the owning app's socket. The receiver owns the pooled
  // buffer; views into it die when the buffer does.
  std::function<void(moppkt::PacketBuf datagram)> on_deliver_to_apps;

  // ---- VPN app side ----
  struct OutPacket {
    SimTime injected_at = 0;
    moppkt::PacketBuf data;
  };
  // Non-destructive check, across all queues.
  bool HasOutgoing() const;
  size_t OutgoingDepth() const;
  // Pops one datagram (the read() syscall's data part; the caller pays the
  // syscall cost in its own lane). With several queues, reads round-robin
  // so no queue starves.
  std::optional<OutPacket> ReadOutgoing();
  // Pops up to `max` datagrams into `out` (appending) — the data part of a
  // readv/recvmmsg-style gathered read, round-robin across the queues (one
  // packet per non-empty queue per turn). Returns the number popped; the
  // caller pays one amortized syscall cost for the whole burst in its own
  // lane. Buffers stay pooled end to end, exactly like ReadOutgoing.
  size_t ReadOutgoingBurst(size_t max, std::vector<OutPacket>* out);
  // Writes one datagram toward the apps through queue `queue`; delivery is
  // immediate (in-kernel handoff of the pooled buffer). The caller pays the
  // write() cost — and any *within-queue* contention — in its own lane.
  void WriteIncoming(size_t queue, moppkt::PacketBuf datagram);
  // Single-fd convenience: queue 0 (the paper model, and where the shared
  // TunWriter's non-lane producers land).
  void WriteIncoming(moppkt::PacketBuf datagram);
  void WriteIncoming(std::vector<uint8_t> datagram);

  // Debug-only: stamps the calling context (LaneScope) as the writer of
  // `queue` and aborts if a different context ever writes it. The engine
  // invokes this at flush time only for queues it assigned exclusively to
  // one lane — shared queues (lanes > queues) legitimately have several
  // writers and are never stamped. Compiled to nothing in Release.
  void CheckQueueWriteAffinity(size_t queue) { queue_affinity_[queue].Check(); }

  // fd teardown (VPN revoked / service stopped).
  void Close();
  bool closed() const { return closed_; }

  // ---- Stats (Table 4 accounting) ----
  uint64_t packets_out() const { return packets_out_; }   // app -> VPN app
  uint64_t packets_in() const { return packets_in_; }     // VPN app -> app
  uint64_t bytes_out() const { return bytes_out_; }
  uint64_t bytes_in() const { return bytes_in_; }
  size_t outgoing_high_water() const { return outgoing_high_water_; }
  // Per-queue tallies (mopeye_tun_queue_* exposition rows).
  uint64_t queue_packets_out(size_t queue) const { return queue_packets_out_[queue]; }
  uint64_t queue_packets_in(size_t queue) const { return queue_packets_in_[queue]; }
  size_t queue_high_water(size_t queue) const { return queue_high_water_[queue]; }

 private:
  size_t QueueOf(const moppkt::PacketBuf& datagram) const;

  mopsim::EventLoop* loop_;
  // One FIFO per attached queue fd; size 1 until ConfigureQueues.
  std::vector<std::deque<OutPacket>> outgoing_;
  size_t read_cursor_ = 0;  // round-robin position for the burst reads
  bool closed_ = false;
  uint64_t packets_out_ = 0;
  uint64_t packets_in_ = 0;
  uint64_t bytes_out_ = 0;
  uint64_t bytes_in_ = 0;
  // android sits below telemetry in the layering DAG; the engine exports
  // these peaks/tallies via AddExternal{Gauge,Counter}.
  size_t outgoing_high_water_ = 0;  // moplint-allow: raw-counter
  std::vector<uint64_t> queue_packets_out_;
  std::vector<uint64_t> queue_packets_in_;
  std::vector<size_t> queue_high_water_;  // moplint-allow: raw-counter
  // Debug-only per-queue writer stamps (see CheckQueueWriteAffinity).
  std::vector<mopcc::LaneAffinityChecker> queue_affinity_;
};

}  // namespace mopdroid

#endif  // MOPEYE_ANDROID_TUN_DEVICE_H_
