// Tunnel read path (paper §3.1).
//
// The Android VPN paradigm gives you a tun fd and a choice:
//  * poll it with sleeps (ToyVpn: fixed 100 ms; Haystack: adaptive back-off)
//    and pay packet-retrieval delay plus idle CPU, or
//  * put the fd in blocking mode on a dedicated thread (MopEye: via fcntl at
//    the native level or the hidden IoUtils.setBlocking — modeled by the
//    `blocking_supported` flag) for zero-delay retrieval.
//
// Stopping a blocked reader needs the dummy-packet trick: nothing arrives,
// read() never returns, Thread.interrupt() doesn't help — so the engine
// triggers a download (SDK >= 21) or writes a self packet (SDK < 21).
//
// Thread model v3: the reader pulls packets off the tun in bursts of up to
// Config::tun_read_batch (readv/recvmmsg model: one syscall-class cost plus a
// small marginal cost per extra packet), classifies the whole burst by flow,
// and then does ONE queue push-batch and ONE selector wakeup per lane per
// burst. With tun_read_batch == 1 and a single sink this degenerates to
// exactly the paper's per-packet TunReader -> MainWorker hand-off.
//
// Thread model v4: with Config::tun_queues > 1 each ReadOutgoingBurst drains
// the device's queue fds round-robin (one packet per non-empty queue per
// turn — TunDevice owns the rotation), so one bulk flow's queue cannot
// starve the rest. A flow sticks to one queue, so per-flow FIFO order is
// unchanged and the flow->lane dispatch below is oblivious to queue count.
//
// The reader is also the steal broker: overloaded lanes publish their hottest
// flow on a StealBoard, and the reader — sole owner of the flow -> lane
// routing decision — re-homes whole flows by installing a routing override
// and threading handoff tokens through both lanes' read queues. Because the
// tokens ride the same FIFO queues as packets, per-flow order and the
// one-lane-per-flow affinity invariant survive: a steal re-homes a flow, it
// never interleaves one.
#ifndef MOPEYE_CORE_TUN_READER_H_
#define MOPEYE_CORE_TUN_READER_H_

#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "android/tun_device.h"
#include "concurrent/lane_affinity.h"
#include "concurrent/steal_board.h"
#include "netpkt/packet.h"
#include "netpkt/packet_buf.h"
#include "core/config.h"
#include "net/selector.h"
#include "sim/actor.h"
#include "telemetry/metrics.h"
#include "util/stats.h"

namespace mopeye {

// Packets handed from TunReader to a worker lane, stamped with enqueue time.
// Entries keep their pooled tun-read buffer; the slab is reused once the
// owning lane finishes with the packet. Besides packets the queue carries
// flow-handoff tokens: markers the steal path threads through both lanes'
// FIFOs so a re-homed flow changes owner at a well-defined point in each
// lane's packet order.
struct ReadQueue {
  enum class Kind : uint8_t {
    kPacket,      // ordinary tunnel packet
    kHandoffIn,   // thief side: `flow` is arriving — park its packets until
                  // the old owner finishes and the flow state is installed
    kHandoffOut,  // victim side: `flow` has left — everything before this
                  // token was the victim's to process; hand the state over
  };
  struct Item {
    moputil::SimTime t = 0;
    moppkt::PacketBuf pkt;   // kPacket only
    moppkt::FlowKey flow;    // valid when flow_valid (classified packets and
                             // both token kinds)
    Kind kind = Kind::kPacket;
    bool flow_valid = false;
    size_t peer_lane = 0;    // tokens: the other lane of the handoff
  };
  std::deque<Item> items;

  // Burst path: Append per packet, one Commit per burst — a single
  // high-water update instead of one per packet.
  void Append(Item item) { items.push_back(std::move(item)); }
  void Commit() { high_water_.SetMax(0, items.size()); }

  // Single-packet convenience (the tun_read_batch == 1 paper model).
  void Push(moputil::SimTime t, moppkt::PacketBuf pkt) {
    Item item;
    item.t = t;
    item.pkt = std::move(pkt);
    Append(std::move(item));
    Commit();
  }

  size_t high_water() const { return static_cast<size_t>(high_water_.Value()); }

 private:
  moptel::Gauge high_water_{1, moptel::GaugeMerge::kMax};
};

class TunReader {
 public:
  // One dispatch target per worker lane: the lane's read queue, the
  // lane-owned selector whose wakeup() signals the lane (§3.2), and the
  // lane's actor (the steal path compares lane backlogs to pick a thief).
  struct LaneSink {
    ReadQueue* queue = nullptr;
    mopnet::Selector* selector = nullptr;
    mopsim::ActorLane* lane = nullptr;
  };

  TunReader(mopsim::EventLoop* loop, mopdroid::TunDevice* tun, const Config* config,
            moputil::Rng rng, std::vector<LaneSink> sinks);

  void Start();
  // Marks the reader as stopping; in blocking mode the caller must also
  // arrange a dummy packet so the blocked read() returns.
  void RequestStop();
  bool stopped() const { return stopped_; }

  // Time from packet injection into the tun to its arrival in the read
  // queue — the §3.1 "packet retrieval delay".
  const moputil::Samples& retrieval_delay_ms() const { return retrieval_delay_ms_; }
  uint64_t packets_read() const { return packets_read_.Value(); }
  uint64_t empty_polls() const { return empty_polls_.Value(); }
  uint64_t steals() const { return steals_.Value(); }
  moputil::SimDuration busy_time() const { return lane_.busy_time(); }

  // The lane a packet with this flow identity is dispatched to by hash alone
  // (steal overrides not applied — use RouteOf for the live routing).
  size_t LaneOf(const moppkt::FlowKey& flow) const {
    return moppkt::FlowLaneOf(flow, sinks_.size());
  }
  // The lane this flow's packets are currently routed to: a steal override
  // if one exists, the flow hash otherwise.
  size_t RouteOf(const moppkt::FlowKey& flow) const {
    if (!overrides_.empty()) {
      auto it = overrides_.find(flow);
      if (it != overrides_.end()) {
        return it->second;
      }
    }
    return LaneOf(flow);
  }

  // Steal brokering: the engine owns the board; lanes publish, the reader
  // consumes after each dispatched burst. Null (the default) disables
  // stealing regardless of Config::steal_enabled.
  void set_steal_board(mopcc::StealBoard<moppkt::FlowKey>* board) { steal_board_ = board; }
  // Called by the engine (thief lane context) once a handoff finishes — the
  // flow is installed on (or abandoned by) its new lane, so the reader may
  // broker it again. Loop-thread confined, like the board itself.
  void NoteHandoffComplete(const moppkt::FlowKey& flow) { pending_handoffs_.erase(flow); }

  // Telemetry: per-read() syscall cost lands in `h` (lane 0 — the reader is
  // a single actor, not sharded). Null (the default) disables observation.
  void set_stage_histogram(moptel::Histogram* h) { stage_hist_ = h; }

 private:
  void OnTunReadable();   // blocking mode wake
  void DrainLoop();       // blocking mode read chain
  void SchedulePoll(moputil::SimDuration sleep);  // polling modes
  void Poll();
  // Classifies a whole burst onto the owning lanes' queues, then commits and
  // wakes each touched lane once.
  void DispatchBurst(std::vector<mopdroid::TunDevice::OutPacket> burst);
  // Consumes StealBoard publications: validates, picks the idlest thief, and
  // initiates the flow handoff.
  void ProcessStealRequests();
  void InitiateSteal(const moppkt::FlowKey& flow, size_t victim, size_t thief);

  mopsim::EventLoop* loop_;
  mopdroid::TunDevice* tun_;
  const Config* config_;
  moputil::Rng rng_;
  std::vector<LaneSink> sinks_;
  mopsim::ActorLane lane_;
  // Debug-only: DispatchBurst (the classify + enqueue + wake step) must only
  // ever run on the reader's own context — per-lane ingress in a future PR
  // must re-home this stamp explicitly, not silently share it.
  mopcc::LaneAffinityChecker dispatch_affinity_;

  bool started_ = false;
  bool stopped_ = false;
  bool blocked_ = true;   // blocking mode: reader parked in read()
  bool draining_ = false;
  moputil::SimDuration adaptive_sleep_;

  // Burst scratch, reused across reads so the steady state allocates nothing.
  std::vector<mopdroid::TunDevice::OutPacket> burst_;
  std::vector<size_t> dirty_lanes_;
  std::vector<uint8_t> lane_dirty_;

  // Steal state. Overrides persist for the engine's lifetime: once re-homed,
  // a flow stays on its new lane until stolen again.
  mopcc::StealBoard<moppkt::FlowKey>* steal_board_ = nullptr;
  std::unordered_map<moppkt::FlowKey, size_t, moppkt::FlowKeyHash> overrides_;
  std::unordered_set<moppkt::FlowKey, moppkt::FlowKeyHash> pending_handoffs_;

  moputil::Samples retrieval_delay_ms_;
  moptel::Counter packets_read_{1};
  moptel::Counter empty_polls_{1};
  moptel::Counter steals_{1};
  moptel::Histogram* stage_hist_ = nullptr;
};

}  // namespace mopeye

#endif  // MOPEYE_CORE_TUN_READER_H_
