// moptel unit tests: lane-sharded merge exactness (run under TSan with real
// concurrent writers), histogram-vs-LogQuantile bit-equivalence, flight
// recorder ring semantics and the fatal dump hook, the text exposition
// golden, and the zero-steady-state-allocation guarantee the hot-path
// instrumentation is built on.
// The replaced operators below route through malloc/free; GCC's
// mismatched-new-delete analysis does not model user-replaced global
// operators and flags every inlined delete in this TU.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <map>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "telemetry/export_server.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/time.h"

namespace {

// Global allocation counter for the zero-allocation test. Overriding the
// global operator new in a test binary is fair game: every allocation in the
// process bumps the counter, so a flat count across a hot-path section proves
// that section allocation-free.
std::atomic<uint64_t> g_allocations{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {
// The registry tests above this file's death test spawn real threads;
// threadsafe style re-execs the binary so the death assertion stays sound.
struct DeathStyleInit {
  DeathStyleInit() { testing::FLAGS_gtest_death_test_style = "threadsafe"; }
} g_death_style_init;
}  // namespace

namespace {

// ---- Merge exactness under concurrent writers ----

TEST(Registry, ConcurrentLaneWritersMergeExactly) {
  // The whole point of lane sharding: each writer touches only its own cell,
  // so plain (non-atomic) increments merge exactly. Running the lanes as real
  // threads makes TSan prove the no-sharing claim.
  constexpr size_t kLanes = 4;
  constexpr uint64_t kPerLane = 100000;
  moptel::Registry reg(kLanes);
  moptel::Counter* counter = reg.AddCounter("t_ops_total", "ops");
  moptel::Gauge* peak = reg.AddGauge("t_peak", "peak", moptel::GaugeMerge::kMax);
  moptel::Histogram* lat = reg.AddHistogram("t_lat_ms", "latency");

  std::vector<std::thread> writers;
  for (size_t lane = 0; lane < kLanes; ++lane) {
    writers.emplace_back([&, lane] {
      for (uint64_t i = 0; i < kPerLane; ++i) {
        counter->Inc(lane);
        peak->SetMax(lane, i + lane);
        lat->Observe(lane, 1.0);
      }
    });
  }
  for (auto& t : writers) {
    t.join();
  }

  EXPECT_EQ(counter->Value(), kLanes * kPerLane);
  for (size_t lane = 0; lane < kLanes; ++lane) {
    EXPECT_EQ(counter->LaneValue(lane), kPerLane);
    EXPECT_EQ(peak->LaneValue(lane), kPerLane - 1 + lane);
    EXPECT_EQ(lat->LaneCount(lane), kPerLane);
  }
  EXPECT_EQ(peak->Value(), kPerLane - 1 + (kLanes - 1));  // max-merge
  EXPECT_EQ(lat->Count(), kLanes * kPerLane);
  EXPECT_DOUBLE_EQ(lat->Sum(), static_cast<double>(kLanes * kPerLane));
}

TEST(Registry, GaugeMergeModes) {
  moptel::Registry reg(3);
  moptel::Gauge* sum = reg.AddGauge("t_depth", "depth", moptel::GaugeMerge::kSum);
  moptel::Gauge* peak = reg.AddGauge("t_hw", "high water", moptel::GaugeMerge::kMax);
  for (size_t lane = 0; lane < 3; ++lane) {
    sum->Set(lane, 10 * (lane + 1));
    peak->SetMax(lane, 10 * (lane + 1));
  }
  EXPECT_EQ(sum->Value(), 10u + 20u + 30u);
  EXPECT_EQ(peak->Value(), 30u);  // summing per-lane peaks would say 60
  peak->SetMax(1, 5);             // SetMax never regresses
  EXPECT_EQ(peak->LaneValue(1), 20u);
}

// ---- Registry::Sample: the health-export snapshot ----

TEST(Registry, SampleSnapshotsAllKindsThroughFilter) {
  moptel::Registry reg(2);
  moptel::Counter* c = reg.AddCounter("mopeye_device_made_total", "made");
  moptel::Gauge* g =
      reg.AddGauge("mopeye_device_depth", "depth", moptel::GaugeMerge::kSum);
  moptel::Histogram* h = reg.AddHistogram("mopeye_device_lat_ms", "latency");
  reg.AddCounter("t_internal_total", "filtered out");
  c->Inc(0);
  c->Inc(1);
  c->Inc(1);
  g->Set(0, 40);
  g->Set(1, 2);
  h->Observe(0, 10.0);
  h->Observe(1, -1.0);  // lands in zero_or_less

  auto samples =
      reg.Sample([](std::string_view name) { return name.starts_with("mopeye_device_"); });
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].name, "mopeye_device_made_total");
  EXPECT_EQ(samples[0].kind, moptel::MetricSample::Kind::kCounter);
  EXPECT_EQ(samples[0].value, 3u);  // lanes merged
  EXPECT_EQ(samples[1].name, "mopeye_device_depth");
  EXPECT_EQ(samples[1].kind, moptel::MetricSample::Kind::kGauge);
  EXPECT_EQ(samples[1].value, 42u);
  EXPECT_EQ(samples[2].kind, moptel::MetricSample::Kind::kHistogram);
  EXPECT_EQ(samples[2].Count(), 2u);
  EXPECT_EQ(samples[2].zero_or_less, 1u);
  EXPECT_DOUBLE_EQ(samples[2].sum, 9.0);
  ASSERT_EQ(samples[2].buckets.size(), 1u);
  EXPECT_EQ(samples[2].buckets[0].second, 1u);
}

// ---- Trace context + store ----

TEST(Trace, IdIsDeterministicAndSamplingAgreesAcrossTiers) {
  moptel::TraceContext ctx;
  EXPECT_FALSE(ctx.valid());  // default = unstamped
  ctx.device_hash = 0xabcd1234;
  ctx.lane = 3;
  ctx.seq = 17;
  ctx.born_ns = 0;
  EXPECT_TRUE(ctx.valid());
  moptel::TraceContext same = ctx;
  EXPECT_EQ(ctx.id(), same.id());  // device and collector derive equal ids
  EXPECT_FALSE(moptel::TraceSampled(ctx.id(), 0));  // 0 = tracing off
  EXPECT_TRUE(moptel::TraceSampled(ctx.id(), 1));   // 1 = everything
  // A 1/4 slice samples about a quarter of distinct seqs — and the same
  // quarter on every tier, since the decision is a pure function of the id.
  size_t sampled = 0;
  for (uint32_t seq = 0; seq < 1000; ++seq) {
    ctx.seq = seq;
    if (moptel::TraceSampled(ctx.id(), 4)) ++sampled;
  }
  EXPECT_GT(sampled, 150u);
  EXPECT_LT(sampled, 350u);
}

TEST(TraceStore, BoundsRetentionEvictingOldestFirst) {
  moptel::TraceStore store(/*capacity=*/3);
  for (uint64_t id = 1; id <= 5; ++id) {
    store.AddSpan(id, /*device_hash=*/7, /*lane=*/0, moptel::TraceHop::kCreated,
                  static_cast<int64_t>(id * 100));
  }
  EXPECT_EQ(store.size(), 3u);
  EXPECT_EQ(store.evicted(), 2u);
  EXPECT_EQ(store.Find(1), nullptr);  // oldest went first
  EXPECT_EQ(store.Find(2), nullptr);
  ASSERT_NE(store.Find(3), nullptr);
  // Spans append in arrival order on an existing trace without re-inserting.
  store.AddSpan(4, 7, 0, moptel::TraceHop::kReceived, 900);
  store.AddSpan(4, 7, 0, moptel::TraceHop::kFolded, 950);
  const auto* t = store.Find(4);
  ASSERT_NE(t, nullptr);
  ASSERT_EQ(t->spans.size(), 3u);
  EXPECT_EQ(t->spans[0].hop, moptel::TraceHop::kCreated);
  EXPECT_EQ(t->spans[2].hop, moptel::TraceHop::kFolded);
  // AppendSpan never creates: a late lifecycle stamp for an evicted trace
  // is dropped instead of re-creating a span-only zombie (which would evict
  // a live trace in its place).
  EXPECT_FALSE(store.AppendSpan(1, moptel::TraceHop::kDurable, 999));
  EXPECT_EQ(store.Find(1), nullptr);
  EXPECT_EQ(store.size(), 3u);
  EXPECT_TRUE(store.AppendSpan(4, moptel::TraceHop::kDurable, 999));
  auto all = store.Traces();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].id, 3u);  // oldest-first snapshot
  EXPECT_EQ(all[2].id, 5u);
  std::string json = store.RenderJson();
  EXPECT_NE(json.find("\"hop\":\"folded\""), std::string::npos);
  EXPECT_NE(json.find("\"hop\":\"created\""), std::string::npos);
}

// ---- Histogram vs LogQuantile bit-equivalence ----

TEST(Histogram, MatchesLogQuantileBitForBit) {
  // The histogram replicates LogQuantile's bucket geometry over preallocated
  // storage; Merged() must answer quantiles bit-identically to feeding every
  // sample through one sketch — including the zero/negative bucket and both
  // clamp ends.
  constexpr double kRelErr = 0.02;
  moptel::Histogram hist(3, kRelErr);
  moputil::LogQuantile reference(kRelErr);

  const double samples[] = {0.0,  -3.5, 1e-6, 6e-5, 0.05, 0.4,  1.7,
                            1.7,  12.9, 99.0, 123.4, 5e8, 2e9,  0.0003};
  size_t lane = 0;
  for (double x : samples) {
    hist.Observe(lane, x);
    reference.Add(x);
    lane = (lane + 1) % 3;
  }

  moputil::LogQuantile merged = hist.Merged();
  EXPECT_EQ(merged.count(), reference.count());
  for (double p : {1.0, 10.0, 50.0, 90.0, 95.0, 99.0, 100.0}) {
    EXPECT_EQ(merged.Quantile(p), reference.Quantile(p)) << "percentile " << p;
  }
}

// Bucket indices that received at least one sample, layout-independent (the
// histogram preallocates the full clamp span; a live LogQuantile only spans
// what it saw).
std::map<int, uint64_t> OccupiedBuckets(const moputil::LogQuantile& q) {
  moputil::LogQuantile::State st = q.state();
  std::map<int, uint64_t> out;
  for (size_t i = 0; i < st.counts.size(); ++i) {
    if (st.counts[i] != 0) out[st.lo_index + static_cast<int>(i)] += st.counts[i];
  }
  return out;
}

TEST(Histogram, CellTableAgreesWithExactPathOnFuzzedSamples) {
  // Observe()'s exponent/mantissa cell table must route every sample to the
  // same bucket the exact log() expression picks. Fuzz the full dynamic
  // range — log-uniform samples, a lognormal cluster like the engine's stage
  // costs, and ulp-neighborhoods of every bucket boundary, where the table
  // must fall back rather than guess.
  constexpr double kRelErr = 0.02;
  moptel::Histogram hist(1, kRelErr);
  moputil::LogQuantile reference(kRelErr);
  auto feed = [&](double x) {
    hist.Observe(0, x);
    reference.Add(x);
  };

  uint64_t s = 0x9e3779b97f4a7c15ull;
  auto next_unit = [&s] {  // xorshift64*, mapped to [0, 1)
    s ^= s >> 12;
    s ^= s << 25;
    s ^= s >> 27;
    return static_cast<double>((s * 0x2545f4914f6cdd1dull) >> 11) * 0x1.0p-53;
  };

  const double log_lo = std::log(moputil::kLogQuantileMin);
  const double log_hi = std::log(moputil::kLogQuantileMax);
  for (int i = 0; i < 200000; ++i) {
    feed(std::exp(log_lo + (log_hi - log_lo) * next_unit()));
  }
  for (int i = 0; i < 200000; ++i) {
    // Rough lognormal via a sum of uniforms: median 0.009 ms, sigma ~0.35.
    double z = next_unit() + next_unit() + next_unit() + next_unit() - 2.0;
    feed(0.009 * std::exp(0.35 * z * 1.73));
  }
  const double log_gamma = std::log((1.0 + kRelErr) / (1.0 - kRelErr));
  int lo_index = static_cast<int>(std::floor(log_lo / log_gamma));
  int hi_index = static_cast<int>(std::floor(log_hi / log_gamma));
  for (int idx = lo_index; idx <= hi_index + 1; ++idx) {
    double edge = std::exp(static_cast<double>(idx) * log_gamma);
    double x = edge;
    for (int step = 0; step < 4; ++step) x = std::nextafter(x, 0.0);
    for (int step = 0; step < 8; ++step) {
      feed(x);
      x = std::nextafter(x, moputil::kLogQuantileMax * 4);
    }
    feed(edge * (1.0 - 1e-10));
    feed(edge * (1.0 + 1e-10));
    feed(edge * (1.0 - 1e-8));
    feed(edge * (1.0 + 1e-8));
  }

  moputil::LogQuantile observed = hist.Merged();
  EXPECT_EQ(observed.count(), reference.count());
  EXPECT_EQ(observed.state().zero_or_less, reference.state().zero_or_less);
  EXPECT_EQ(OccupiedBuckets(observed), OccupiedBuckets(reference));
}

TEST(Histogram, ObserveNeverGrowsStorage) {
  moptel::Histogram hist(2);
  size_t span = hist.bucket_span();
  // Values across the whole representable range, plus both out-of-range
  // directions; the span is fixed at construction.
  for (double x : {1e-9, 5e-5, 1.0, 1e6, 1e9, 1e12}) {
    hist.Observe(0, x);
    hist.Observe(1, x);
  }
  EXPECT_EQ(hist.bucket_span(), span);
  EXPECT_EQ(hist.Count(), 12u);
}

TEST(Histogram, SameGeometryInstancesShareOneCellTable) {
  moptel::Histogram a(1);
  moptel::Histogram b(4);          // lane count does not affect the geometry
  moptel::Histogram c(2, 0.02);    // explicit default precision
  moptel::Histogram other(1, 0.05);
  ASSERT_NE(a.cell_table_id(), nullptr);
  EXPECT_EQ(a.cell_table_id(), b.cell_table_id());
  EXPECT_EQ(a.cell_table_id(), c.cell_table_id());
  EXPECT_NE(a.cell_table_id(), other.cell_table_id());

  // Sharing must not change behavior: both precisions still bucket exactly.
  moputil::Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    double x = std::exp(rng.Uniform(-12.0, 25.0));
    b.Observe(i % 4, x);
    other.Observe(0, x);
  }
  EXPECT_EQ(b.Count(), 1000u);
  EXPECT_EQ(other.Count(), 1000u);
}

// ---- Flight recorder ----

TEST(FlightRecorder, RingWrapsKeepingNewestOldestFirst) {
  moptel::FlightRecorder rec(2, /*capacity_per_lane=*/4);
  for (int i = 0; i < 10; ++i) {
    rec.Record(0, 1000 + i, moptel::TraceKind::kPacketVerdict, "evt",
               static_cast<uint64_t>(i));
  }
  EXPECT_EQ(rec.LaneRecorded(0), 10u);
  std::vector<moptel::TraceEvent> events = rec.LaneEvents(0);
  ASSERT_EQ(events.size(), 4u);  // ring holds only the newest capacity
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].a, 6 + i) << "oldest-first order";
    EXPECT_EQ(events[i].time_ns, 1000 + 6 + static_cast<int64_t>(i));
  }
  EXPECT_EQ(rec.LaneRecorded(1), 0u);
  EXPECT_TRUE(rec.LaneEvents(1).empty());
}

TEST(FlightRecorder, MergedEventsInterleaveLanesChronologically) {
  moptel::FlightRecorder rec(3, 8);
  rec.Record(2, 300, moptel::TraceKind::kPacketVerdict, "third");
  rec.Record(0, 100, moptel::TraceKind::kPacketVerdict, "first");
  rec.Record(1, 200, moptel::TraceKind::kPacketVerdict, "second");
  rec.Record(0, 200, moptel::TraceKind::kPacketVerdict, "second-tie");
  auto merged = rec.MergedEvents();
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_STREQ(merged[0].what, "first");
  // Stable sort over the lane-0,1,2 concatenation: timestamp ties keep the
  // lower lane's event first.
  EXPECT_EQ(merged[1].time_ns, 200);
  EXPECT_EQ(merged[2].time_ns, 200);
  EXPECT_STREQ(merged[1].what, "second-tie");  // lane 0 first on ties
  EXPECT_STREQ(merged[2].what, "second");
  EXPECT_STREQ(merged[3].what, "third");
  std::string json = rec.RenderJson();
  EXPECT_NE(json.find("\"what\":\"first\""), std::string::npos);
  EXPECT_NE(json.find("\"lane\":2"), std::string::npos);
}

TEST(FlightRecorder, DumpRendersEventFields) {
  moptel::FlightRecorder rec(1, 8);
  rec.Record(0, 123456789, moptel::TraceKind::kConnectOutcome, "connect-ok", 7, 9);
  std::string dump = rec.Dump();
  EXPECT_NE(dump.find("flight recorder dump"), std::string::npos);
  EXPECT_NE(dump.find("connect-ok"), std::string::npos);
  EXPECT_NE(dump.find("t=0.123456789s"), std::string::npos);
  EXPECT_NE(dump.find("a=7"), std::string::npos);
  EXPECT_NE(dump.find("b=9"), std::string::npos);
}

TEST(FlightRecorderDeathTest, FatalCheckDumpsTheRing) {
  // MOP_CHECK failure must surface the recorder's recent history: the fatal
  // log hook runs DumpToStderr before abort().
  moptel::FlightRecorder rec(1, 8);
  rec.Record(0, 42, moptel::TraceKind::kPacketVerdict, "parse-error", 13);
  rec.InstallFatalDump();
  EXPECT_DEATH({ MOP_CHECK(false) << "boom"; }, "flight recorder dump");
  EXPECT_DEATH({ MOP_CHECK(false) << "boom"; }, "parse-error");
  moptel::FlightRecorder::UninstallFatalDump();
}

// ---- Text exposition ----

TEST(Registry, RenderTextGolden) {
  moptel::Registry reg(2);
  moptel::Counter* requests = reg.AddCounter("t_requests_total", "Requests");
  reg.AddExternalCounter("t_ext_total", "External", [] { return uint64_t{7}; });
  moptel::Gauge* peak = reg.AddGauge("t_peak", "Peak", moptel::GaugeMerge::kMax);
  reg.AddHistogram("t_lat_ms", "Latency");
  requests->Inc(0);
  requests->Inc(0);
  requests->Inc(0);
  requests->Inc(1);
  requests->Inc(1);
  peak->SetMax(0, 4);
  peak->SetMax(1, 9);

  const std::string expected =
      "# HELP t_requests_total Requests\n"
      "# TYPE t_requests_total counter\n"
      "t_requests_total 5\n"
      "t_requests_total{lane=\"0\"} 3\n"
      "t_requests_total{lane=\"1\"} 2\n"
      "# HELP t_ext_total External\n"
      "# TYPE t_ext_total counter\n"
      "t_ext_total 7\n"
      "# HELP t_peak Peak\n"
      "# TYPE t_peak gauge\n"
      "t_peak 9\n"
      "t_peak{lane=\"0\"} 4\n"
      "t_peak{lane=\"1\"} 9\n"
      "# HELP t_lat_ms Latency\n"
      "# TYPE t_lat_ms summary\n"
      "t_lat_ms_sum 0\n"
      "t_lat_ms_count 0\n"
      "t_lat_ms_count{lane=\"0\"} 0\n"
      "t_lat_ms_count{lane=\"1\"} 0\n";
  EXPECT_EQ(reg.RenderText(), expected);
}

TEST(Registry, RenderTextQuantilesAndScrapeValue) {
  moptel::Registry reg(1);
  moptel::Counter* c = reg.AddCounter("t_ops_total", "ops");
  moptel::Histogram* lat = reg.AddHistogram("t_lat_ms", "latency");
  c->Add(0, 41);
  for (int i = 1; i <= 100; ++i) {
    lat->Observe(0, static_cast<double>(i));
  }
  std::string text = reg.RenderText();
  EXPECT_NE(text.find("t_lat_ms{quantile=\"0.5\"}"), std::string::npos);
  EXPECT_NE(text.find("t_lat_ms{quantile=\"0.95\"}"), std::string::npos);
  EXPECT_NE(text.find("t_lat_ms{quantile=\"0.99\"}"), std::string::npos);

  double v = 0;
  ASSERT_TRUE(moptel::ScrapeValue(text, "t_ops_total", &v));
  EXPECT_DOUBLE_EQ(v, 41.0);
  ASSERT_TRUE(moptel::ScrapeValue(text, "t_lat_ms_count", &v));
  EXPECT_DOUBLE_EQ(v, 100.0);
  EXPECT_FALSE(moptel::ScrapeValue(text, "t_absent_total", &v));
  // The labeled per-lane series must never satisfy an unlabeled lookup.
  EXPECT_FALSE(moptel::ScrapeValue(text, "t_lat_ms_coun", &v));

  uint64_t u = 0;
  ASSERT_TRUE(reg.CounterValue("t_ops_total", &u));
  EXPECT_EQ(u, 41u);
  EXPECT_FALSE(reg.GaugeValue("t_ops_total", &u));  // kind-checked lookup
  ASSERT_NE(reg.FindHistogram("t_lat_ms"), nullptr);
  EXPECT_EQ(reg.FindHistogram("t_ops_total"), nullptr);
}

TEST(Registry, RenderJsonCarriesCountSumAndQuantiles) {
  moptel::Registry reg(1);
  moptel::Histogram* lat = reg.AddHistogram("t_lat_ms", "latency");
  lat->Observe(0, 2.0);
  lat->Observe(0, 4.0);
  std::string json = reg.RenderJson();
  EXPECT_NE(json.find("\"t_lat_ms\":{\"type\":\"histogram\",\"count\":2,\"sum\":6"),
            std::string::npos);
  EXPECT_NE(json.find("\"p50\":"), std::string::npos);
}

// ---- Zero steady-state allocation ----

TEST(Telemetry, HotPathInstrumentationDoesNotAllocate) {
  moptel::Registry reg(2);
  moptel::Counter* c = reg.AddCounter("t_ops_total", "ops");
  moptel::Gauge* g = reg.AddGauge("t_hw", "hw", moptel::GaugeMerge::kMax);
  moptel::Histogram* h = reg.AddHistogram("t_lat_ms", "latency");
  moptel::FlightRecorder rec(2, 256);

  // Warm every path once, then the steady state must be allocation-free.
  c->Inc(0);
  g->SetMax(0, 1);
  h->Observe(0, 0.5);
  rec.Record(0, 1, moptel::TraceKind::kPacketVerdict, "warm");

  uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (uint64_t i = 0; i < 50000; ++i) {
    size_t lane = i & 1;
    c->Inc(lane);
    c->Add(lane, 3);
    g->SetMax(lane, i);
    h->Observe(lane, 0.05 + static_cast<double>(i % 1000));
    rec.Record(lane, static_cast<int64_t>(i), moptel::TraceKind::kQueueHighWater,
               "hw", i);
  }
  uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before) << "hot-path telemetry allocated";
}

// ---- Log prefixes (satellite: sim-time + lane-token log prefixes) ----

struct CapturedLog {
  std::string text;
};

void CaptureSink(const char* line, void* arg) {
  static_cast<CapturedLog*>(arg)->text += line;
}

TEST(Logging, ClockAndLaneTokenPrefixesRenderWhenInstalled) {
  moputil::LogLevel prev_level = moputil::GetLogLevel();
  moputil::SetLogLevel(moputil::LogLevel::kInfo);
  CapturedLog captured;
  moputil::SetLogSinkForTest(&CaptureSink, &captured);
  const int64_t fake_now = 1234567890;  // 1.234567890 s
  moputil::SetLogClock(&fake_now);
  moputil::SetLogLaneToken("MainWorker-3");

  MOP_LOG(Info) << "hello";

  moputil::SetLogLaneToken(nullptr);
  moputil::SetLogClock(nullptr);
  moputil::SetLogSinkForTest(nullptr, nullptr);

  EXPECT_NE(captured.text.find("t=1.234567890s"), std::string::npos) << captured.text;
  EXPECT_NE(captured.text.find("MainWorker-3"), std::string::npos) << captured.text;
  EXPECT_NE(captured.text.find("hello"), std::string::npos);

  // And with nothing installed, the prefix stays the historical format.
  CapturedLog plain;
  moputil::SetLogSinkForTest(&CaptureSink, &plain);
  MOP_LOG(Info) << "plain";
  moputil::SetLogSinkForTest(nullptr, nullptr);
  moputil::SetLogLevel(prev_level);
  EXPECT_EQ(plain.text.find("t="), std::string::npos) << plain.text;
  EXPECT_NE(plain.text.find("[I "), std::string::npos) << plain.text;
}

}  // namespace
