#include "netpkt/ip.h"

#include <cstdio>

#include "netpkt/checksum.h"
#include "util/strings.h"

namespace moppkt {

moputil::Result<IpAddr> IpAddr::Parse(const std::string& text) {
  auto parts = moputil::Split(text, '.');
  if (parts.size() != 4) {
    return moputil::InvalidArgument("bad IPv4 literal: " + text);
  }
  uint32_t value = 0;
  for (const auto& part : parts) {
    if (part.empty() || part.size() > 3) {
      return moputil::InvalidArgument("bad IPv4 octet: " + text);
    }
    int octet = 0;
    for (char c : part) {
      if (c < '0' || c > '9') {
        return moputil::InvalidArgument("bad IPv4 octet: " + text);
      }
      octet = octet * 10 + (c - '0');
    }
    if (octet > 255) {
      return moputil::InvalidArgument("IPv4 octet out of range: " + text);
    }
    value = (value << 8) | static_cast<uint32_t>(octet);
  }
  return IpAddr(value);
}

std::string IpAddr::ToString() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (value_ >> 24) & 0xff, (value_ >> 16) & 0xff,
                (value_ >> 8) & 0xff, value_ & 0xff);
  return buf;
}

std::string SocketAddr::ToString() const {
  return ip.ToString() + ":" + std::to_string(port);
}

namespace {
void PutU16(std::vector<uint8_t>& out, size_t pos, uint16_t v) {
  out[pos] = static_cast<uint8_t>(v >> 8);
  out[pos + 1] = static_cast<uint8_t>(v & 0xff);
}
uint16_t GetU16(std::span<const uint8_t> d, size_t pos) {
  return static_cast<uint16_t>((d[pos] << 8) | d[pos + 1]);
}
uint32_t GetU32(std::span<const uint8_t> d, size_t pos) {
  return (static_cast<uint32_t>(d[pos]) << 24) | (static_cast<uint32_t>(d[pos + 1]) << 16) |
         (static_cast<uint32_t>(d[pos + 2]) << 8) | d[pos + 3];
}
}  // namespace

moputil::Result<Ipv4Header> ParseIpv4(std::span<const uint8_t> data) {
  if (data.size() < 20) {
    return moputil::InvalidArgument("IPv4 datagram shorter than minimal header");
  }
  uint8_t version = data[0] >> 4;
  if (version != 4) {
    return moputil::InvalidArgument("not an IPv4 packet (version " +
                                    std::to_string(version) + ")");
  }
  Ipv4Header h;
  h.ihl = data[0] & 0x0f;
  if (h.ihl < 5) {
    return moputil::InvalidArgument("IPv4 IHL below 5");
  }
  if (h.header_bytes() > data.size()) {
    return moputil::InvalidArgument("IPv4 header runs past buffer");
  }
  h.dscp_ecn = data[1];
  h.total_length = GetU16(data, 2);
  if (h.total_length < h.header_bytes() || h.total_length > data.size()) {
    return moputil::InvalidArgument("IPv4 total length out of bounds");
  }
  h.identification = GetU16(data, 4);
  h.flags_fragment = GetU16(data, 6);
  h.ttl = data[8];
  h.protocol = data[9];
  h.checksum = GetU16(data, 10);
  h.src = IpAddr(GetU32(data, 12));
  h.dst = IpAddr(GetU32(data, 16));
  if (Checksum(data.subspan(0, h.header_bytes())) != 0) {
    return moputil::InvalidArgument("IPv4 header checksum mismatch");
  }
  return h;
}

std::vector<uint8_t> BuildIpv4(Ipv4Header h, std::span<const uint8_t> payload) {
  h.ihl = 5;  // the relay never emits IP options
  h.total_length = static_cast<uint16_t>(20 + payload.size());
  std::vector<uint8_t> out(20 + payload.size());
  out[0] = static_cast<uint8_t>(0x40 | h.ihl);
  out[1] = h.dscp_ecn;
  PutU16(out, 2, h.total_length);
  PutU16(out, 4, h.identification);
  PutU16(out, 6, h.flags_fragment);
  out[8] = h.ttl;
  out[9] = h.protocol;
  PutU16(out, 10, 0);
  out[12] = static_cast<uint8_t>(h.src.value() >> 24);
  out[13] = static_cast<uint8_t>(h.src.value() >> 16);
  out[14] = static_cast<uint8_t>(h.src.value() >> 8);
  out[15] = static_cast<uint8_t>(h.src.value());
  out[16] = static_cast<uint8_t>(h.dst.value() >> 24);
  out[17] = static_cast<uint8_t>(h.dst.value() >> 16);
  out[18] = static_cast<uint8_t>(h.dst.value() >> 8);
  out[19] = static_cast<uint8_t>(h.dst.value());
  uint16_t csum = Checksum(std::span<const uint8_t>(out.data(), 20));
  PutU16(out, 10, csum);
  std::copy(payload.begin(), payload.end(), out.begin() + 20);
  return out;
}

}  // namespace moppkt
