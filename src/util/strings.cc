#include "util/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace moputil {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(s.substr(start));
      break;
    }
    parts.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) {
    ++b;
  }
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) {
    --e;
  }
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool ParseHexU64(std::string_view s, uint64_t* out) {
  if (s.empty() || s.size() > 16) {
    return false;
  }
  uint64_t v = 0;
  for (char c : s) {
    uint64_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<uint64_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      digit = static_cast<uint64_t>(c - 'A' + 10);
    } else {
      return false;
    }
    v = (v << 4) | digit;
  }
  *out = v;
  return true;
}

std::string WithCommas(int64_t value) {
  bool negative = value < 0;
  uint64_t v = negative ? static_cast<uint64_t>(-(value + 1)) + 1 : static_cast<uint64_t>(value);
  std::string digits = std::to_string(v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3 + 1);
  size_t lead = digits.size() % 3;
  if (lead == 0) {
    lead = 3;
  }
  for (size_t i = 0; i < digits.size(); ++i) {
    if (i == lead || (i > lead && (i - lead) % 3 == 0)) {
      out.push_back(',');
    }
    out.push_back(digits[i]);
  }
  if (negative) {
    out.insert(out.begin(), '-');
  }
  return out;
}

}  // namespace moputil
