// Known-good fixture for the raw-counter rule: quantities that are not
// tallies, a waived legacy counter, and registry-backed instrumentation.
#include <cstddef>
#include <cstdint>
#include <vector>

namespace moptel {
class Counter;
}

struct CleanStats {
  uint64_t bytes_sent_ = 0;
  uint64_t last_seq_ = 0;
  // Legacy tally kept for wire compatibility, explicitly waived:
  uint64_t legacy_frames_count_ = 0;  // moplint-allow: raw-counter
  // A peak gauge a lower layer can't register (layering), explicitly waived:
  size_t pool_high_water_ = 0;  // moplint-allow: raw-counter
  // Per-queue tallies below the telemetry layer (the tun_device shape),
  // exported upstairs via AddExternalCounter, explicitly waived:
  std::vector<uint64_t> queue_frames_total_;  // moplint-allow: raw-counter
  // The sanctioned pattern: a registry-owned counter, held by pointer.
  moptel::Counter* frames_ = nullptr;
};
