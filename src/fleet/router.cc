#include "fleet/router.h"

#include <cassert>

#include "util/hash.h"

namespace mopfleet {

FleetRouter::FleetRouter(std::vector<moppkt::SocketAddr> collectors)
    : collectors_(std::move(collectors)) {
  assert(!collectors_.empty());
}

size_t FleetRouter::ShardOf(uint32_t device_id) const {
  return static_cast<size_t>(moputil::Mix64(device_id) % collectors_.size());
}

std::vector<moppkt::SocketAddr> FleetRouter::PlanFor(uint32_t device_id) const {
  std::vector<moppkt::SocketAddr> plan;
  plan.reserve(collectors_.size());
  size_t home = ShardOf(device_id);
  for (size_t i = 0; i < collectors_.size(); ++i) {
    plan.push_back(collectors_[(home + i) % collectors_.size()]);
  }
  return plan;
}

}  // namespace mopfleet
