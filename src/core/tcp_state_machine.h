// MopEye's user-space TCP state machine (paper §2.3).
//
// Because the external connection is a regular kernel socket, MopEye cannot
// see that side's TCB; the *internal* connection to the app must therefore be
// terminated by MopEye's own RFC 793 machine. This class is deliberately
// pure: it consumes parsed app segments and produces segment specs + decoded
// payload, with no clocks, callbacks, or I/O, so every transition is unit-
// testable in isolation. The engine owns the wiring (when to send SYN/ACK,
// when an ACK is triggered by a completed socket write, etc.).
//
// Deliberate deviations the paper specifies (§3.4):
//  * MSS 1460 advertised in the SYN/ACK; data packets fill 1500-byte IP MTU.
//  * Fixed 65535 receive window; no window-scale option.
//  * No congestion or flow control toward the app: the tunnel is a lossless
//    in-memory link, so data is forwarded continuously without awaiting ACKs.
#ifndef MOPEYE_CORE_TCP_STATE_MACHINE_H_
#define MOPEYE_CORE_TCP_STATE_MACHINE_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "netpkt/packet.h"
#include "netpkt/tcp.h"

namespace mopeye {

enum class RelayTcpState {
  kListen,          // created, SYN seen, external connect in flight
  kSynRcvd,         // SYN/ACK sent, waiting for the app's ACK
  kEstablished,
  kCloseWait,       // app sent FIN (half closed), we still relay server data
  kLastAck,         // we sent FIN after CloseWait, awaiting final ACK
  kFinWait1,        // server closed first; our FIN sent, awaiting ACK
  kFinWait2,        // our FIN acked, awaiting app FIN
  kClosing,         // simultaneous close
  kTimeWait,
  kClosed,
};

const char* RelayTcpStateName(RelayTcpState s);

class TcpStateMachine {
 public:
  // `flow` is the app's five-tuple (local = app addr on the tun, remote =
  // server). `iss` is our initial send sequence number.
  TcpStateMachine(const moppkt::FlowKey& flow, uint32_t iss, uint16_t mss, uint16_t window);

  // What the machine wants done after consuming one app segment.
  struct Input {
    const moppkt::TcpSegment* seg = nullptr;
  };
  struct Output {
    // Segments to emit toward the app (in order).
    std::vector<moppkt::TcpSegmentSpec> to_app;
    // In-order payload bytes to relay to the external socket. A view into
    // the consumed segment's buffer (zero-copy): valid only while the packet
    // buffer the segment was parsed from is alive, so the engine either
    // consumes it immediately or keeps that buffer until the socket write.
    std::span<const uint8_t> to_socket;
    // The app acknowledged our SYN/ACK: connection fully established.
    bool established = false;
    // App half-closed (FIN): trigger a half-close write event (§2.3).
    bool app_half_closed = false;
    // App reset: tear down the external connection and drop the client.
    bool app_reset = false;
    // Handshake completion for the final ACK of a passive close.
    bool fully_closed = false;
    // Segment was a duplicate SYN (app retransmitted while we connect).
    bool duplicate_syn = false;
  };

  // Feeds one segment from the app. Must be called with segments for this
  // flow only.
  Output OnAppSegment(const moppkt::TcpSegment& seg);

  // ---- Engine-driven transitions ----
  // On SYN receipt the engine records the app's ISN here (state kListen).
  void NoteSyn(const moppkt::TcpSegment& syn);
  // External connect() completed: emit the SYN/ACK (kListen -> kSynRcvd).
  moppkt::TcpSegmentSpec MakeSynAck();
  // Re-emit the SYN/ACK for an app SYN retransmission (state unchanged;
  // valid in kSynRcvd, e.g. when the external server answered slowly).
  moppkt::TcpSegmentSpec MakeSynAckRetransmit() const;
  // ACK the data relayed so far (sent when the socket write completes).
  moppkt::TcpSegmentSpec MakeAck();
  // Segment server payload into MSS-sized data packets (advances snd_nxt_).
  std::vector<moppkt::TcpSegmentSpec> MakeData(std::span<const uint8_t> payload);
  // Server closed: emit FIN (kEstablished -> kFinWait1, kCloseWait ->
  // kLastAck).
  moppkt::TcpSegmentSpec MakeFin();
  // Abortive teardown toward the app (external connect failed or RST).
  moppkt::TcpSegmentSpec MakeRst();

  RelayTcpState state() const { return state_; }
  const moppkt::FlowKey& flow() const { return flow_; }
  uint32_t snd_nxt() const { return snd_nxt_; }
  uint32_t rcv_nxt() const { return rcv_nxt_; }
  uint16_t app_mss() const { return app_mss_; }
  uint32_t app_window() const { return app_window_; }
  uint64_t bytes_to_app() const { return bytes_to_app_; }
  uint64_t bytes_from_app() const { return bytes_from_app_; }

 private:
  moppkt::TcpSegmentSpec BaseSpec() const;

  moppkt::FlowKey flow_;
  RelayTcpState state_ = RelayTcpState::kListen;
  uint32_t iss_;
  uint32_t snd_nxt_;
  uint32_t snd_una_;
  uint32_t rcv_nxt_ = 0;
  uint16_t mss_;
  uint16_t window_;
  uint16_t app_mss_ = 536;
  uint32_t app_window_ = 65535;
  bool fin_sent_ = false;
  uint64_t bytes_to_app_ = 0;
  uint64_t bytes_from_app_ = 0;
};

}  // namespace mopeye

#endif  // MOPEYE_CORE_TCP_STATE_MACHINE_H_
