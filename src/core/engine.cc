#include "core/engine.h"

#include <algorithm>

#include "netpkt/dns.h"
#include "netpkt/udp.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/metrics.h"
#include "util/hash.h"
#include "util/logging.h"

namespace mopeye {

namespace {
constexpr moputil::SimDuration kUdpIdleTimeout = moputil::Seconds(60);

// Per-lane emission pools. Static duration like BufPool::Default(): packets
// emitted by a lane can still sit in the TunWriter queue, pending event-loop
// deliveries, or the app-side stack after the engine is destroyed, so the
// pools they release into must outlive every engine. Lane i of every engine
// shares pool i — same sharing model as the default pool, but lanes of one
// engine never contend with each other.
moppkt::BufPool& LaneEmitPool(size_t lane) {
  static std::vector<std::unique_ptr<moppkt::BufPool>>* pools =
      new std::vector<std::unique_ptr<moppkt::BufPool>>();
  while (pools->size() <= lane) {
    pools->push_back(std::make_unique<moppkt::BufPool>());
  }
  return *(*pools)[lane];
}
}  // namespace

// Everything the telemetry plane owns, built only when Config::telemetry is
// on. Hot paths hold the raw histogram/gauge pointers (stable: the Registry
// stores entries behind unique_ptr), guarded by a single `if (telemetry_)`.
struct MopEyeEngine::Telemetry {
  moptel::Registry registry;
  moptel::FlightRecorder recorder;
  // Relay pipeline stage timings, milliseconds.
  moptel::Histogram* stage_dispatch = nullptr;      // read-queue residency
  moptel::Histogram* stage_parse = nullptr;         // parse (+inspection) cost
  moptel::Histogram* stage_tcp = nullptr;           // socket-event sm processing
  moptel::Histogram* stage_socket_write = nullptr;  // staged flush to server
  moptel::Histogram* stage_socket_read = nullptr;   // server->app read cost
  moptel::Histogram* stage_dns = nullptr;           // DNS temp-thread setup
  moptel::Histogram* stage_tun_read = nullptr;      // TunReader per-read cost
  moptel::Histogram* stage_tun_write = nullptr;     // TunWriter drain bursts
  moptel::Gauge* lane_clients_high_water = nullptr;
  // Per-tun-queue gathered-flush timings (mopeye_tun_queue_flush_q<i>_ms),
  // one histogram per queue; empty when Config::tun_queues == 1.
  std::vector<moptel::Histogram*> queue_flush;
  // Read-queue high water last traced per lane (flight-recorder dedup).
  std::vector<size_t> read_queue_hw_seen;

  explicit Telemetry(size_t lanes)
      : registry(lanes), recorder(lanes), read_queue_hw_seen(lanes, 0) {}
};

MopEyeEngine::MopEyeEngine(mopdroid::AndroidDevice* device, Config config)
    : device_(device),
      config_(std::move(config)),
      loop_(device->loop()),
      rng_(device->rng().Fork()) {
  MOP_CHECK(device != nullptr);
  MOP_CHECK(config_.worker_lanes >= 1) << "worker_lanes must be >= 1";
  MOP_CHECK(config_.tun_queues >= 1) << "tun_queues must be >= 1";
  if (config_.worker_lanes > 1) {
    // The scaled configuration: all lanes feed the single TunWriter, so
    // batched drains are what keeps the shared fd from re-serializing them.
    config_.write_batching = true;
  }
  for (int i = 0; i < config_.worker_lanes; ++i) {
    // Lane 0 of a single-lane engine keeps the historical thread name.
    std::string name = config_.worker_lanes == 1 ? "MainWorker"
                                                 : "MainWorker-" + std::to_string(i);
    lanes_.push_back(std::make_unique<WorkerLane>(loop_, std::move(name),
                                                  &LaneEmitPool(static_cast<size_t>(i))));
    lanes_.back()->index = static_cast<size_t>(i);
  }
  device_->package_manager().Install(kMopEyeUid, "com.mopeye", "MopEye");
  mapper_ = std::make_unique<PacketToAppMapper>(device_, &config_);
  // Reads of the merged store pull the lane shards in first, so a raw
  // MeasurementStore* captured at composition time (the Uploader's) keeps
  // observing lane-sharded records.
  store_.SetRefillHook([this] { MergeStoreShards(); });
  if (config_.telemetry) {
    BuildTelemetry();
  }
}

void MopEyeEngine::BuildTelemetry() {
  telemetry_ = std::make_unique<Telemetry>(lanes_.size());
  moptel::Registry& reg = telemetry_->registry;

  // Engine relay counters live in the per-lane Counters structs (the relay
  // hot paths already increment them); the registry reads them through
  // external lane counters so exposition and the structs can never diverge.
#define MOPEYE_REGISTER_ENGINE_COUNTER(name)                              \
  reg.AddExternalLaneCounter("mopeye_engine_" #name "_total",             \
                             "Engine relay counter: " #name,              \
                             [this](size_t lane) {                        \
                               return lanes_[lane]->counters.name;        \
                             });
  MOPEYE_ENGINE_COUNTER_FIELDS(MOPEYE_REGISTER_ENGINE_COUNTER)
#undef MOPEYE_REGISTER_ENGINE_COUNTER

  telemetry_->lane_clients_high_water = reg.AddGauge(
      "mopeye_engine_lane_clients_high_water",
      "Peak concurrent relay clients on any one lane", moptel::GaugeMerge::kMax);
  reg.AddExternalGauge("mopeye_engine_clients_high_water",
                       "Peak concurrent relay clients across the whole engine",
                       [this] { return static_cast<uint64_t>(clients_global_high_water_); });
  reg.AddExternalGauge("mopeye_engine_active_clients",
                       "Currently live relay clients",
                       [this] { return static_cast<uint64_t>(active_clients()); });

  // Relay pipeline stage timings (milliseconds of modeled cost).
  telemetry_->stage_tun_read =
      reg.AddHistogram("mopeye_relay_stage_tun_read_ms",
                       "TunReader per-read() syscall cost");
  telemetry_->stage_dispatch =
      reg.AddHistogram("mopeye_relay_stage_dispatch_ms",
                       "Read-queue residency: tun enqueue to lane pickup");
  telemetry_->stage_parse =
      reg.AddHistogram("mopeye_relay_stage_parse_ms",
                       "Packet parse (+ content inspection) cost");
  telemetry_->stage_tcp =
      reg.AddHistogram("mopeye_relay_stage_tcp_ms",
                       "Socket-event state-machine processing cost");
  telemetry_->stage_socket_write =
      reg.AddHistogram("mopeye_relay_stage_socket_write_ms",
                       "Staged app-to-server socket write cost");
  telemetry_->stage_socket_read =
      reg.AddHistogram("mopeye_relay_stage_socket_read_ms",
                       "Server-to-app socket read cost");
  telemetry_->stage_dns =
      reg.AddHistogram("mopeye_relay_stage_dns_ms",
                       "DNS temp-thread spawn + message processing cost");
  telemetry_->stage_tun_write =
      reg.AddHistogram("mopeye_relay_stage_tun_write_ms",
                       "TunWriter per-drain tunnel write cost");

  // Buffer-pool shards (one pool per lane).
  reg.AddExternalLaneCounter("mopeye_bufpool_acquires_total",
                             "Pool buffer acquisitions",
                             [this](size_t lane) { return lanes_[lane]->pool->stats().acquires; });
  reg.AddExternalLaneCounter("mopeye_bufpool_slab_allocs_total",
                             "Fresh slab allocations (pool misses)",
                             [this](size_t lane) { return lanes_[lane]->pool->stats().slab_allocs; });
  reg.AddExternalLaneCounter("mopeye_bufpool_oversize_allocs_total",
                             "Oversize buffers allocated outside the pool",
                             [this](size_t lane) { return lanes_[lane]->pool->stats().oversize_allocs; });
  reg.AddExternalLaneCounter("mopeye_bufpool_copies_total",
                             "Defensive buffer copies",
                             [this](size_t lane) { return lanes_[lane]->pool->stats().copies; });

  // Tun device / reader / writer. These objects come up in Start(), so the
  // readers null-guard; a scrape before Start() reports zeros.
  reg.AddExternalCounter("mopeye_tun_packets_out_total",
                         "Packets the apps wrote into the tunnel",
                         [this] { return vpn_ && vpn_->tun() ? vpn_->tun()->packets_out() : 0; });
  reg.AddExternalCounter("mopeye_tun_packets_in_total",
                         "Packets MopEye wrote back toward the apps",
                         [this] { return vpn_ && vpn_->tun() ? vpn_->tun()->packets_in() : 0; });
  reg.AddExternalCounter("mopeye_tun_bytes_out_total",
                         "Bytes the apps wrote into the tunnel",
                         [this] { return vpn_ && vpn_->tun() ? vpn_->tun()->bytes_out() : 0; });
  reg.AddExternalCounter("mopeye_tun_bytes_in_total",
                         "Bytes MopEye wrote back toward the apps",
                         [this] { return vpn_ && vpn_->tun() ? vpn_->tun()->bytes_in() : 0; });
  reg.AddExternalGauge("mopeye_tun_outgoing_high_water",
                       "Peak depth of the tun outgoing queue",
                       [this] {
                         return vpn_ && vpn_->tun()
                                    ? static_cast<uint64_t>(vpn_->tun()->outgoing_high_water())
                                    : 0;
                       });
  // Multi-queue egress (thread model v4): per-queue flush timings and
  // delivery tallies. Registered only when several queues are attached, so
  // the single-queue exposition (and fleet scrape agreement) is unchanged.
  if (config_.tun_queues > 1) {
    size_t queues = static_cast<size_t>(config_.tun_queues);
    telemetry_->queue_flush.resize(queues, nullptr);
    for (size_t q = 0; q < queues; ++q) {
      std::string qs = std::to_string(q);
      telemetry_->queue_flush[q] =
          reg.AddHistogram("mopeye_tun_queue_flush_q" + qs + "_ms",
                           "Gathered lane flush cost on tun queue " + qs);
      reg.AddExternalCounter(
          "mopeye_tun_queue_packets_in_q" + qs + "_total",
          "Packets MopEye wrote toward the apps through tun queue " + qs,
          [this, q] { return vpn_ && vpn_->tun() ? vpn_->tun()->queue_packets_in(q) : 0; });
      reg.AddExternalCounter(
          "mopeye_tun_queue_packets_out_q" + qs + "_total",
          "App packets the kernel routed into tun queue " + qs,
          [this, q] { return vpn_ && vpn_->tun() ? vpn_->tun()->queue_packets_out(q) : 0; });
      reg.AddExternalGauge(
          "mopeye_tun_queue_outgoing_high_water_q" + qs,
          "Peak depth of tun queue " + qs + "'s outgoing FIFO",
          [this, q] {
            return vpn_ && vpn_->tun()
                       ? static_cast<uint64_t>(vpn_->tun()->queue_high_water(q))
                       : 0;
          });
    }
  }
  reg.AddExternalCounter("mopeye_tun_reader_packets_total",
                         "Packets the TunReader pulled off the tun fd",
                         [this] { return reader_ ? reader_->packets_read() : 0; });
  reg.AddExternalCounter("mopeye_tun_reader_empty_polls_total",
                         "Reader polls that found no packet (sleeping modes)",
                         [this] { return reader_ ? reader_->empty_polls() : 0; });
  reg.AddExternalCounter("mopeye_tun_reader_steals_total",
                         "Elephant-flow steals the reader brokered",
                         [this] { return reader_ ? reader_->steals() : 0; });
  reg.AddExternalCounter("mopeye_tun_writer_packets_total",
                         "Packets the TunWriter wrote to the tun fd",
                         [this] {
                           return writer_ ? static_cast<uint64_t>(writer_->packets_written()) : 0;
                         });
  reg.AddExternalCounter("mopeye_tun_writer_bursts_total",
                         "Batched TunWriter drain bursts",
                         [this] {
                           return writer_ ? static_cast<uint64_t>(writer_->write_bursts()) : 0;
                         });
  reg.AddExternalCounter("mopeye_tun_writer_waits_total",
                         "Times the queueWrite consumer parked in wait()",
                         [this] { return writer_ ? static_cast<uint64_t>(writer_->waits()) : 0; });
  reg.AddExternalCounter("mopeye_tun_writer_notifies_total",
                         "Times a producer paid the notify() wakeup",
                         [this] { return writer_ ? static_cast<uint64_t>(writer_->notifies()) : 0; });
  reg.AddExternalGauge("mopeye_tun_writer_queue_high_water",
                       "Peak depth of the TunWriter queue",
                       [this] {
                         return writer_ ? static_cast<uint64_t>(writer_->queue_high_water()) : 0;
                       });

  // Packet-to-app mapper (§3.3).
  reg.AddExternalCounter("mopeye_mapper_requests_total",
                         "Flow-to-app mapping requests",
                         [this] { return static_cast<uint64_t>(mapper_->requests()); });
  reg.AddExternalCounter("mopeye_mapper_parses_total",
                         "Mapping requests that paid a /proc parse",
                         [this] { return static_cast<uint64_t>(mapper_->parses()); });
  reg.AddExternalCounter("mopeye_mapper_parses_avoided_total",
                         "Mapping requests served without a /proc parse",
                         [this] { return static_cast<uint64_t>(mapper_->avoided()); });
  reg.AddExternalCounter("mopeye_mapper_misattributions_total",
                         "Mappings attributed to the wrong app",
                         [this] { return static_cast<uint64_t>(mapper_->misattributions()); });

  telemetry_->recorder.InstallFatalDump();
}

MopEyeEngine::~MopEyeEngine() {
  if (running_) {
    Stop();
  }
}

Config::ProtectMode MopEyeEngine::EffectiveProtectMode() const {
  if (config_.protect_mode != Config::ProtectMode::kAuto) {
    return config_.protect_mode;
  }
  return device_->sdk_version() >= mopdroid::kSdkLollipop
             ? Config::ProtectMode::kDisallowedApp
             : Config::ProtectMode::kPerSocket;
}

moputil::Status MopEyeEngine::Start() {
  MOP_CHECK(!running_);
  vpn_ = std::make_unique<mopdroid::VpnService>(device_);
  mopdroid::VpnService::Builder builder(vpn_.get());
  builder.addAddress(moppkt::IpAddr(10, 0, 0, 2))
      .addRoute(moppkt::IpAddr(0, 0, 0, 0), 0)
      .addDnsServer(device_->system_dns())
      .setSession("MopEye");
  if (EffectiveProtectMode() == Config::ProtectMode::kDisallowedApp) {
    // §3.5.2: exclude MopEye itself from the VPN once, instead of protecting
    // every socket. Invoked at initialization so no worker lane ever pays it.
    auto st = builder.addDisallowedApplication("com.mopeye");
    if (!st.ok()) {
      return st;
    }
  }
  mopdroid::TunDevice* tun = builder.establish();
  if (tun == nullptr) {
    return moputil::Internal("VpnService.establish() failed");
  }
  // Multi-queue egress (thread model v4): attach the queue fds before any
  // traffic and pin each lane to queue (index % queues). A queue owned by
  // exactly one lane is an exclusive contention domain: its flushes skip the
  // tun_write_contention draw entirely (and carry a debug-only
  // write-affinity stamp). With tun_queues == 1 every lane shares queue 0
  // and samples contention on every flush — the paper model, draw-for-draw.
  if (config_.tun_queues > 1) {
    tun->ConfigureQueues(static_cast<size_t>(config_.tun_queues));
  }
  {
    size_t queues = static_cast<size_t>(config_.tun_queues);
    std::vector<size_t> queue_writers(queues, 0);
    for (auto& lane : lanes_) {
      lane->queue = lane->index % queues;
      ++queue_writers[lane->queue];
    }
    for (auto& lane : lanes_) {
      lane->queue_exclusive = queues > 1 && queue_writers[lane->queue] == 1;
    }
  }

  std::vector<TunReader::LaneSink> sinks;
  sinks.reserve(lanes_.size());
  for (auto& lane : lanes_) {
    WorkerLane* l = lane.get();
    l->selector.on_wakeup = [this, l] { OnSelectorWakeup(*l); };
    sinks.push_back(TunReader::LaneSink{&l->read_queue, &l->selector, &l->lane});
  }
  reader_ = std::make_unique<TunReader>(loop_, tun, &config_, rng_.Fork(),
                                        std::move(sinks));
  if (config_.steal_enabled && lanes_.size() > 1) {
    steal_board_ = std::make_unique<mopcc::StealBoard<moppkt::FlowKey>>(lanes_.size());
    reader_->set_steal_board(steal_board_.get());
  }
  writer_ = std::make_unique<TunWriter>(loop_, tun, &config_, rng_.Fork());
  if (lanes_.size() == 1) {
    // Single-lane: the lane continues the engine's own stream, making the
    // thread-model-v2 engine draw-for-draw identical to the historical
    // single-MainWorker engine (the bench baselines depend on this).
    lanes_[0]->rng = rng_;
  } else {
    for (auto& lane : lanes_) {
      lane->rng = rng_.Fork();
    }
  }
  if (telemetry_) {
    reader_->set_stage_histogram(telemetry_->stage_tun_read);
    writer_->set_stage_histogram(telemetry_->stage_tun_write);
    telemetry_->recorder.Record(0, loop_->Now(), moptel::TraceKind::kLifecycle,
                                "engine-start", lanes_.size());
  }
  reader_->Start();
  running_ = true;
  for (const auto& service : services_) {
    service->OnEngineStart();
  }
  return moputil::OkStatus();
}

void MopEyeEngine::RegisterService(std::shared_ptr<EngineService> service) {
  MOP_CHECK(service != nullptr);
  services_.push_back(std::move(service));
  if (telemetry_) {
    services_.back()->RegisterMetrics(&telemetry_->registry);
  }
  if (running_) {
    services_.back()->OnEngineStart();
  }
}

EngineService* MopEyeEngine::FindService(std::string_view name) const {
  for (const auto& service : services_) {
    if (service->service_name() == name) {
      return service.get();
    }
  }
  return nullptr;
}

void MopEyeEngine::Stop() {
  if (!running_) {
    return;
  }
  running_ = false;
  if (telemetry_) {
    telemetry_->recorder.Record(0, loop_->Now(), moptel::TraceKind::kLifecycle,
                                "engine-stop", active_clients());
  }
  // Services flush first, while the loop is still fully alive: the
  // uploader's final batch is drained from the store here and delivered by
  // event-loop callbacks after Stop() returns.
  for (const auto& service : services_) {
    service->OnEngineStop();
  }
  reader_->RequestStop();
  if (config_.read_mode == Config::TunReadMode::kBlocking) {
    // Release the blocked read() (§3.1). On 5.0+ MopEye's own packets no
    // longer traverse the tunnel (it is a disallowed app), so it triggers a
    // DownloadManager request; below 5.0 it writes a self packet.
    if (EffectiveProtectMode() == Config::ProtectMode::kDisallowedApp) {
      device_->DownloadManagerEnqueue();
    } else if (vpn_->tun() != nullptr) {
      moppkt::TcpSegmentSpec dummy;
      dummy.src_port = 1;
      dummy.dst_port = 1;
      dummy.flags = moppkt::RstFlag();
      vpn_->tun()->InjectOutgoing(moppkt::BuildTcpDatagram(
          dummy, vpn_->tun_address(), moppkt::IpAddr(127, 0, 0, 1)));
    }
  }
  writer_->Stop();
  // Tear the VPN down shortly after the dummy packet releases the reader.
  loop_->Schedule(moputil::Millis(10), [this] {
    if (vpn_) {
      vpn_->Stop();
    }
  });
  // Drop relay state; external channels reset.
  for (auto& lane : lanes_) {
    for (auto& [flow, client] : lane->clients) {
      if (client->kernel_handle != 0) {
        device_->conn_table().Unregister(client->kernel_handle);
        client->kernel_handle = 0;
      }
      if (client->connect_lane) {
        retired_worker_busy_ += client->connect_lane->busy_time();
        ++retired_worker_count_;
      }
      if (client->channel) {
        client->channel->Deregister();
        client->channel->Reset();
      }
    }
    lane->clients.clear();
    lane->by_channel.clear();
    for (auto& [flow, udp] : lane->udp_clients) {
      if (udp->kernel_handle != 0) {
        device_->conn_table().Unregister(udp->kernel_handle);
      }
      if (udp->lane) {
        retired_worker_busy_ += udp->lane->busy_time();
        ++retired_worker_count_;
      }
    }
    lane->udp_clients.clear();
    lane->arriving.clear();
    lane->parked.clear();
    lane->write_gather.clear();
  }
  // Lanes were cleared without RemoveClient, so the live count resets here.
  clients_live_ = 0;
}

MopEyeEngine::Counters MopEyeEngine::counters() const {
  Counters total;
  for (const auto& lane : lanes_) {
    total += lane->counters;
  }
  return total;
}

const MopEyeEngine::Counters& MopEyeEngine::lane_counters(size_t lane) const {
  MOP_CHECK(lane < lanes_.size());
  return lanes_[lane]->counters;
}

size_t MopEyeEngine::active_clients() const {
  size_t n = 0;
  for (const auto& lane : lanes_) {
    n += lane->clients.size();
  }
  return n;
}

void MopEyeEngine::MergeStoreShards() {
  std::vector<Measurement> batch;
  for (auto& lane : lanes_) {
    std::vector<Measurement> shard = lane->store.TakeRecords();
    batch.insert(batch.end(), std::make_move_iterator(shard.begin()),
                 std::make_move_iterator(shard.end()));
  }
  if (batch.empty()) {
    return;
  }
  // Each shard is time-ordered (sim time is monotonic); a stable sort merges
  // them deterministically, and everything already merged is older than this
  // batch, so appending keeps the global time order.
  std::stable_sort(batch.begin(), batch.end(),
                   [](const Measurement& a, const Measurement& b) { return a.time < b.time; });
  for (auto& m : batch) {
    store_.Add(std::move(m));
  }
}

MopEyeEngine::ResourceUsage MopEyeEngine::resources() const {
  ResourceUsage u;
  if (reader_) {
    u.busy_reader = reader_->busy_time();
  }
  if (writer_) {
    u.busy_writer = writer_->writer_busy_time();
  }
  size_t read_queue_high_water = 0;  // moplint-allow: raw-counter (local sum)
  for (const auto& lane : lanes_) {
    u.busy_main += lane->lane.busy_time();
    read_queue_high_water += lane->read_queue.high_water();
  }
  u.busy_workers = retired_worker_busy_;
  for (const auto& lane : lanes_) {
    for (const auto& [flow, client] : lane->clients) {
      if (client->connect_lane) {
        u.busy_workers += client->connect_lane->busy_time();
      }
    }
    for (const auto& [flow, udp] : lane->udp_clients) {
      if (udp->lane) {
        u.busy_workers += udp->lane->busy_time();
      }
    }
  }
  // Memory model: per-client socket read+write buffers (§3.4 sizes them at
  // 64 KiB), queue high-water, and a fixed service overhead.
  size_t per_client = 2 * config_.socket_buffer + 1024 + config_.extra_memory_per_client;
  size_t peak_clients = std::max(counters().clients_high_water, active_clients());
  u.memory_bytes = 10 * 1024 * 1024                      // service heap + runtime-resident
                   + config_.extra_memory_base           // inspection buffers / caches
                   + peak_clients * per_client           // relay clients
                   + read_queue_high_water * 1600        // read queue packets
                   + (writer_ ? writer_->queue_high_water() * 1600 : 0);
  return u;
}

// ---------------- Worker lanes ----------------

void MopEyeEngine::OnSelectorWakeup(WorkerLane& lane) {
  // select() returns on this lane's thread after the dispatch latency.
  lane.lane.Submit(config_.costs.selector_dispatch->Sample(lane.rng), moputil::Micros(3),
                   [this, l = &lane] { DrainEvents(*l); });
}

void MopEyeEngine::DrainEvents(WorkerLane& lane) {
  if (!running_) {
    return;
  }
  mopcc::LaneScope lane_scope(lane.index);
  lane.affinity.Check();
  // Overload check before the queue drains into lane tasks: the backlog the
  // steal policy wants to shed is exactly what accumulated since the last
  // dispatch.
  if (steal_board_) {
    MaybePublishSteal(lane);
  }
  // §3.2: one waiting point serves both queues; we interleave processing of
  // socket events and tunnel packets so neither starves.
  std::vector<mopnet::ReadyEvent> events = lane.selector.TakeReady();
  size_t ei = 0;
  bool more = true;
  while (more) {
    more = false;
    if (ei < events.size()) {
      mopnet::ReadyEvent ev = events[ei++];
      if (ev.channel != nullptr) {
        moputil::SimDuration sm_cost = config_.costs.sm_process->Sample(lane.rng);
        if (telemetry_) {
          telemetry_->stage_tcp->Observe(lane.index, moputil::ToMillis(sm_cost));
        }
        lane.lane.Submit(0, sm_cost,
                         [this, l = &lane, ev] { HandleSocketEvent(*l, ev); });
      }
      more = true;
    }
    if (!lane.read_queue.items.empty()) {
      ReadQueue::Item item = std::move(lane.read_queue.items.front());
      lane.read_queue.items.pop_front();
      switch (item.kind) {
        case ReadQueue::Kind::kPacket: {
          moputil::SimDuration cost = config_.costs.packet_parse->Sample(lane.rng);
          if (config_.content_inspection) {
            cost += config_.content_inspection->Sample(lane.rng);
          }
          if (telemetry_) {
            telemetry_->stage_dispatch->Observe(lane.index,
                                                moputil::ToMillis(loop_->Now() - item.t));
            telemetry_->stage_parse->Observe(lane.index, moputil::ToMillis(cost));
            if (lane.read_queue.high_water() > telemetry_->read_queue_hw_seen[lane.index]) {
              telemetry_->read_queue_hw_seen[lane.index] = lane.read_queue.high_water();
              telemetry_->recorder.Record(lane.index, loop_->Now(),
                                          moptel::TraceKind::kQueueHighWater,
                                          "read-queue-high-water",
                                          lane.read_queue.high_water());
            }
          }
          lane.lane.Submit(0, cost, [this, l = &lane, pkt = std::move(item.pkt)]() mutable {
            ProcessTunPacket(*l, std::move(pkt));
          });
          break;
        }
        case ReadQueue::Kind::kHandoffIn:
          // The flow is on its way here. Marked synchronously at pop: the
          // token sits ahead of every rerouted packet in this FIFO, so the
          // mark is in place before any of them is even submitted.
          lane.arriving.insert(item.flow);
          break;
        case ReadQueue::Kind::kHandoffOut: {
          // Everything this lane still owned of the flow was queued (and
          // submitted) ahead of this token; the lane-FIFO places the handoff
          // after all of it completes.
          moppkt::FlowKey flow = item.flow;
          size_t thief = item.peer_lane;
          lane.lane.Submit(0, config_.costs.enqueue->Sample(lane.rng),
                           [this, l = &lane, flow, thief] { CompleteHandoff(*l, flow, thief); });
          break;
        }
      }
      more = true;
    }
  }
}

void MopEyeEngine::ProcessTunPacket(WorkerLane& lane, moppkt::PacketBuf raw) {
  if (!running_) {
    return;
  }
  mopcc::LaneScope lane_scope(lane.index);
  lane.affinity.Check();
  if (!lane.arriving.empty()) {
    // A flow is mid-handoff to this lane: park its packets (in arrival
    // order) until the victim's side completes and InstallStolenFlow drains
    // them — processing now would touch flow state this lane does not own
    // yet. A header peek suffices; the full parse happens at the drain.
    auto flow = moppkt::PeekFlow(raw.bytes());
    if (flow.ok() && lane.arriving.count(flow.value()) != 0) {
      lane.parked[flow.value()].push_back(std::move(raw));
      ++lane.counters.steal_parked_packets;
      return;
    }
  }
  ++lane.counters.tun_packets;
  // Zero-copy parse: `pkt` is a bundle of views into `raw`'s slab, which
  // stays alive for the rest of this call (and beyond it only if a data
  // segment moves the buffer into the client's staged socket writes).
  auto parsed = moppkt::ParsePacket(raw.bytes());
  if (!parsed.ok()) {
    ++lane.counters.parse_errors;
    if (telemetry_) {
      telemetry_->recorder.Record(lane.index, loop_->Now(),
                                  moptel::TraceKind::kPacketVerdict, "parse-error",
                                  raw.size());
    }
    return;
  }
  const moppkt::ParsedPacket& pkt = parsed.value();
  if (pkt.is_tcp()) {
    if (pkt.tcp->flags.syn && !pkt.tcp->flags.ack) {
      HandleSyn(lane, pkt);
    } else {
      HandleTcpSegment(lane, pkt, std::move(raw));
    }
    return;
  }
  if (pkt.is_udp()) {
    ++lane.counters.udp_packets;
    if (pkt.udp->dst_port == 53 && config_.measure_dns) {
      HandleDnsQuery(lane, pkt);
    } else if (config_.relay_non_dns_udp) {
      HandleUdp(lane, pkt);
    }
    return;
  }
  // Non-TCP/UDP (e.g. ICMP): MopEye does not relay these.
}

std::shared_ptr<MopEyeEngine::TcpClient> MopEyeEngine::FindClient(
    WorkerLane& lane, const moppkt::FlowKey& flow) {
  auto it = lane.clients.find(flow);
  return it == lane.clients.end() ? nullptr : it->second;
}

// ---------------- TCP relay ----------------

void MopEyeEngine::HandleSyn(WorkerLane& lane, const moppkt::ParsedPacket& pkt) {
  ++lane.counters.syns;
  moppkt::FlowKey flow = pkt.flow();
  if (auto existing = FindClient(lane, flow)) {
    ++lane.counters.syn_duplicates;
    // The app's kernel retransmitted its SYN while our external connect is
    // still in flight (or our SYN/ACK crossed it). Re-answer if we can.
    if (existing->sm.state() == RelayTcpState::kSynRcvd) {
      EmitToApp(existing, existing->sm.MakeSynAckRetransmit(), &lane.lane, &lane);
    }
    return;
  }

  auto client = std::make_shared<TcpClient>(flow, &lane, lane.rng.NextU32(), config_.mss,
                                            config_.window);
  client->sm.NoteSyn(*pkt.tcp);
  lane.clients[flow] = client;
  lane.counters.clients_high_water =
      std::max(lane.counters.clients_high_water, lane.clients.size());
  ++clients_live_;
  if (clients_live_ > clients_global_high_water_) {
    clients_global_high_water_ = clients_live_;
    if (telemetry_) {
      telemetry_->recorder.Record(lane.index, loop_->Now(),
                                  moptel::TraceKind::kQueueHighWater,
                                  "clients-high-water", clients_live_);
    }
  }
  if (telemetry_) {
    telemetry_->lane_clients_high_water->SetMax(lane.index, lane.clients.size());
  }

  // Mapping strategy decides *where* the /proc parse happens (§3.3):
  // naive & cache block the owning lane right here; lazy defers to the
  // socket-connect thread after the handshake.
  if (config_.mapping == Config::MappingStrategy::kNaivePerSyn ||
      config_.mapping == Config::MappingStrategy::kCacheBased) {
    mapper_->Map(flow, &lane.lane, [this, client](PacketToAppMapper::Outcome out) {
      client->app = out;
      client->mapping_done = true;
      StartExternalConnect(client);
    });
  } else {
    StartExternalConnect(client);
  }
}

void MopEyeEngine::StartExternalConnect(const std::shared_ptr<TcpClient>& client) {
  // §2.4: run connect() in a temporary blocking-mode thread.
  WorkerLane* home = client->home;
  client->connect_lane = std::make_unique<mopsim::ActorLane>(loop_, "sock-connect");
  moputil::SimDuration spawn = config_.costs.thread_spawn->Sample(home->rng);
  client->connect_lane->Submit(spawn, 0, [this, client] {
    if (client->removed) {
      return;
    }
    WorkerLane* home = client->home;
    client->channel = mopnet::SocketChannel::Create(&device_->net());
    client->channel->set_owner_uid(kMopEyeUid);
    home->by_channel[client->channel.get()] = client;

    moputil::SimDuration protect_cost = 0;
    if (EffectiveProtectMode() == Config::ProtectMode::kPerSocket) {
      // §3.5.2 fallback: protect() per socket, paid on this thread so only
      // the SYN path is delayed, never the data path.
      protect_cost = vpn_->protect(*client->channel);
    }
    client->connect_lane->Submit(0, protect_cost, [this, client] {
      if (client->removed) {
        return;
      }
      WorkerLane* home = client->home;
      // MopEye's own socket appears in the kernel table too (it grows the
      // /proc files the mapper parses, as the paper notes).
      mopnet::ConnEntry entry;
      entry.proto = moppkt::IpProto::kTcp;
      entry.remote = client->flow.remote;
      entry.state = mopnet::ConnState::kSynSent;
      entry.uid = kMopEyeUid;
      entry.local = moppkt::SocketAddr{device_->net().external_ip(), 0};
      client->kernel_handle = device_->conn_table().Register(entry);

      if (config_.timestamp_mode == Config::TimestampMode::kSelector) {
        // Connect completions route back to the flow's owning lane.
        client->channel->RegisterWith(&home->selector, mopnet::kOpConnect);
      }
      // Timestamp immediately before the blocking connect() call (§4.1.1:
      // "putting the timing function just before and after the socket call").
      client->connect_t0 = loop_->Now();
      std::weak_ptr<TcpClient> weak = client;
      client->channel->Connect(client->flow.remote, [this, weak](moputil::Status st) {
        auto c = weak.lock();
        if (!c || c->removed) {
          return;
        }
        if (!st.ok()) {
          ++c->home->counters.connects_failed;
          if (telemetry_) {
            telemetry_->recorder.Record(c->home->index, loop_->Now(),
                                        moptel::TraceKind::kConnectOutcome,
                                        "connect-failed", c->flow.remote.port);
          }
          c->connect_lane->Submit(config_.costs.thread_wake->Sample(c->home->rng), 0,
                                  [this, c] {
                                    if (c->removed) {
                                      return;
                                    }
                                    EmitToApp(c, c->sm.MakeRst(), c->connect_lane.get());
                                    RemoveClient(c);
                                  });
          return;
        }
        // The connect() call returns: wake the socket-connect thread and
        // take the post-connect() timestamp there.
        c->connect_lane->Submit(config_.costs.thread_wake->Sample(c->home->rng), 0,
                                [this, c](moputil::SimTime start, moputil::SimTime) {
                                  FinishConnect(c, start);
                                });
      });
    });
  });
}

void MopEyeEngine::FinishConnect(const std::shared_ptr<TcpClient>& client,
                                 moputil::SimTime t1) {
  if (client->removed) {
    return;
  }
  WorkerLane* home = client->home;
  ++home->counters.connects_ok;
  if (telemetry_) {
    telemetry_->recorder.Record(home->index, loop_->Now(),
                                moptel::TraceKind::kConnectOutcome, "connect-ok",
                                static_cast<uint64_t>(t1 - client->connect_t0),
                                client->flow.remote.port);
  }
  client->external_connected = true;
  device_->conn_table().UpdateState(client->kernel_handle, mopnet::ConnState::kEstablished);

  if (config_.timestamp_mode == Config::TimestampMode::kBlockingConnectThread) {
    client->pending_rtt = t1 - client->connect_t0;
    MaybeRecordTcpMeasurement(client);
  }
  // (kSelector mode captures the RTT when the kConnected event reaches the
  // owning lane.)

  // §2.3: "Only after establishing the external connection can MopEye
  // complete the handshake with the app" — and it does so *immediately*, so
  // the app-side handshake is never delayed by mapping or registration.
  client->connect_lane->Submit(0, config_.costs.sm_process->Sample(home->rng),
                               [this, client] {
    if (client->removed) {
      return;
    }
    EmitToApp(client, client->sm.MakeSynAck(), client->connect_lane.get());

    // §3.4: register() with the selector can be expensive — run it on this
    // thread only after completing the internal handshake duties.
    moputil::SimDuration reg = config_.costs.selector_register->Sample(client->home->rng);
    client->connect_lane->Submit(0, reg, [this, client] {
      if (client->removed || !client->channel) {
        return;
      }
      if (config_.timestamp_mode != Config::TimestampMode::kSelector) {
        client->channel->RegisterWith(&client->home->selector, mopnet::kOpRead);
      } else {
        client->channel->SetInterest(mopnet::kOpRead | mopnet::kOpConnect);
      }
      if (config_.mapping == Config::MappingStrategy::kLazy) {
        // §3.3: mapping deferred to this thread, after the handshake, "thus
        // not affecting the timely TCP handshake on the application side".
        mapper_->Map(client->flow, client->connect_lane.get(),
                     [this, client](PacketToAppMapper::Outcome out) {
                       client->app = out;
                       client->mapping_done = true;
                       MaybeRecordTcpMeasurement(client);
                     });
      }
    });
  });
}

void MopEyeEngine::MaybeRecordTcpMeasurement(const std::shared_ptr<TcpClient>& client) {
  if (client->measurement_recorded || client->pending_rtt < 0 || !client->mapping_done) {
    return;
  }
  client->measurement_recorded = true;
  Measurement m;
  m.time = loop_->Now();
  m.kind = MeasureKind::kTcpConnect;
  m.rtt = client->pending_rtt;
  m.server = client->flow.remote;
  m.uid = client->app.uid;
  m.app = client->app.label;
  auto domain = device_->net().farm()->resolution().ReverseLookup(client->flow.remote.ip);
  if (domain) {
    m.domain = *domain;
  }
  m.net_type = device_->net().profile().type;
  m.isp = device_->net().profile().isp;
  m.country = device_->net().profile().country;
  m.device_id = device_->model();
  StampTrace(&m, *client->home);
  client->home->store.Add(std::move(m));
}

void MopEyeEngine::StampTrace(Measurement* m, WorkerLane& home) {
  if (config_.trace_sample_period == 0) {
    return;
  }
  if (trace_device_hash_ == 0) {
    uint64_t h = 1469598103934665603ull;  // FNV-1a over the model string
    for (char c : device_->model()) {
      h = (h ^ static_cast<uint8_t>(c)) * 1099511628211ull;
    }
    trace_device_hash_ = static_cast<uint32_t>(moputil::Mix64(h) >> 32);
    if (trace_device_hash_ == 0) {
      trace_device_hash_ = 1;  // 0 means "unstamped" in TraceContext
    }
  }
  m->trace.device_hash = trace_device_hash_;
  m->trace.lane = static_cast<uint16_t>(home.index);
  m->trace.seq = ++home.trace_seq;
  m->trace.born_ns = loop_->Now();
}

void MopEyeEngine::HandleTcpSegment(WorkerLane& lane, const moppkt::ParsedPacket& pkt,
                                    moppkt::PacketBuf raw) {
  moppkt::FlowKey flow = pkt.flow();
  auto client = FindClient(lane, flow);
  if (!client) {
    ++lane.counters.unknown_flow;
    if (telemetry_) {
      telemetry_->recorder.Record(lane.index, loop_->Now(),
                                  moptel::TraceKind::kPacketVerdict, "unknown-flow",
                                  flow.remote.port);
    }
    return;
  }
  // The flow's state must live on the lane processing it ("a channel never
  // migrates lanes").
  MOP_DCHECK(client->home == &lane);
  mopcc::LaneScope lane_scope(lane.index);
  client->home->affinity.Check();
  const moppkt::TcpSegment& seg = *pkt.tcp;
  bool is_pure_ack = seg.flags.ack && !seg.flags.syn && !seg.flags.fin && !seg.flags.rst &&
                     seg.payload.empty();
  if (seg.flags.fin) {
    ++lane.counters.fins;
  }
  if (seg.flags.rst) {
    ++lane.counters.rsts;
  }
  if (!seg.payload.empty()) {
    ++lane.counters.data_segments;
  }

  TcpStateMachine::Output out = client->sm.OnAppSegment(seg);

  for (const auto& spec : out.to_app) {
    EmitToApp(client, spec, &lane.lane, &lane);
  }

  if (out.app_reset) {
    // §2.3 "TCP RST": close the external connection, drop the client object.
    if (client->channel) {
      client->channel->Reset();
    }
    RemoveClient(client);
    return;
  }

  if (!out.to_socket.empty()) {
    // §2.3 "TCP Data": stage for the socket write and trigger a write event
    // for the socket instance. `to_socket` is a view into `raw`, so the
    // pooled buffer rides along unserialized until the flush — no byte is
    // copied here.
    lane.counters.bytes_app_to_server += out.to_socket.size();
    client->socket_write_bytes += out.to_socket.size();
    client->socket_write_buf.push_back(
        TcpClient::PendingWrite{std::move(raw), out.to_socket});
    if (!client->write_event_pending && client->channel) {
      client->write_event_pending = true;
      lane.selector.TriggerWrite(client->channel);
    }
  } else if (is_pure_ack) {
    // §2.3 "Pure ACK": nothing to relay.
    ++lane.counters.pure_acks_discarded;
  }

  if (out.app_half_closed) {
    // §2.3 "TCP FIN": half-close write event for the socket instance.
    if (client->channel && client->socket_write_buf.empty()) {
      client->channel->Close();
    }
    // If data is still buffered, FlushSocketWrites closes after flushing.
  }

  if (out.fully_closed || client->sm.state() == RelayTcpState::kClosed) {
    RemoveClient(client);
  }
}

void MopEyeEngine::HandleSocketEvent(WorkerLane& lane, const mopnet::ReadyEvent& ev) {
  if (!running_ || ev.channel == nullptr) {
    return;
  }
  auto it = lane.by_channel.find(ev.channel.get());
  if (it == lane.by_channel.end()) {
    return;
  }
  auto client = it->second.lock();
  if (!client || client->removed) {
    return;
  }
  WorkerLane* owner = client->migrating ? client->migrate_target : client->home;
  if (owner != &lane) {
    // The flow was re-homed (work stealing) while this event task sat in our
    // queue. Forward it: the owner's lane-FIFO lands it after the install,
    // so it runs against fully migrated state.
    owner->lane.Submit(0, 0, [this, owner, ev] { HandleSocketEvent(*owner, ev); });
    return;
  }
  MOP_DCHECK(client->home == &lane);
  mopcc::LaneScope lane_scope(lane.index);
  client->home->affinity.Check();
  switch (ev.type) {
    case mopnet::SocketEventType::kConnected: {
      if (config_.timestamp_mode == Config::TimestampMode::kSelector) {
        // Ablation: the event-notification timestamp the paper rejects —
        // inflated by selector dispatch and lane queueing.
        client->pending_rtt = loop_->Now() - client->connect_t0;
        MaybeRecordTcpMeasurement(client);
      }
      break;
    }
    case mopnet::SocketEventType::kConnectFailed:
      break;  // the blocking-connect callback already handled failure
    case mopnet::SocketEventType::kReadable:
      ++lane.counters.socket_read_events;
      HandleSocketReadable(client);
      break;
    case mopnet::SocketEventType::kWritable:
      client->write_event_pending = false;
      FlushSocketWrites(client);
      break;
    case mopnet::SocketEventType::kPeerClosed: {
      // §2.3 "Socket Read" close case: FIN toward the app.
      if (client->channel && client->channel->available() > 0) {
        HandleSocketReadable(client);  // drain remaining data first
      }
      RelayTcpState s = client->sm.state();
      if (s == RelayTcpState::kEstablished || s == RelayTcpState::kSynRcvd ||
          s == RelayTcpState::kCloseWait) {
        EmitToApp(client, client->sm.MakeFin(), &lane.lane, &lane);
      }
      if (client->sm.state() == RelayTcpState::kClosed) {
        RemoveClient(client);
      }
      break;
    }
    case mopnet::SocketEventType::kReset: {
      EmitToApp(client, client->sm.MakeRst(), &lane.lane, &lane);
      RemoveClient(client);
      break;
    }
  }
}

void MopEyeEngine::FlushSocketWrites(const std::shared_ptr<TcpClient>& client) {
  if (!client->channel || client->socket_write_buf.empty()) {
    return;
  }
  WorkerLane* home = client->home;
  // Gather the staged spans into the socket's buffer in one pass; the pooled
  // packets they point into return to the pool as the deque clears.
  std::vector<uint8_t> data;
  data.reserve(client->socket_write_bytes);
  std::vector<uint32_t> chunk_bytes;
  if (config_.lane_tun_write) {
    chunk_bytes.reserve(client->socket_write_buf.size());
  }
  for (const auto& pending : client->socket_write_buf) {
    data.insert(data.end(), pending.data.begin(), pending.data.end());
    if (config_.lane_tun_write) {
      chunk_bytes.push_back(static_cast<uint32_t>(pending.data.size()));
    }
  }
  client->socket_write_buf.clear();
  client->socket_write_bytes = 0;
  moputil::SimDuration cost = config_.costs.socket_op->Sample(home->rng);
  if (telemetry_) {
    telemetry_->stage_socket_write->Observe(home->index, moputil::ToMillis(cost));
  }
  home->lane.Submit(0, cost, [this, client, data = std::move(data),
                              chunk_bytes = std::move(chunk_bytes)]() mutable {
    if (client->removed || !client->channel) {
      return;
    }
    if (client->channel->state() != mopnet::ChannelState::kConnected &&
        client->channel->state() != mopnet::ChannelState::kPeerClosed) {
      return;
    }
    client->channel->Write(std::move(data));
    // §2.3 "Socket Write": after pushing the buffer to the server, instruct
    // the state machine to ACK the app. In gathered-egress mode the relay
    // keeps the paper's per-packet granularity: one cumulative ACK per tun
    // data packet staged into this batch, ascending to the batch total, so
    // window feedback tracks individual packets. These land consecutively
    // at the lane's gather tail, which is exactly the redundancy the
    // ack_coalescing rule collapses back into the final segment.
    moppkt::TcpSegmentSpec ack = client->sm.MakeAck();
    if (chunk_bytes.size() > 1) {
      uint32_t cursor = ack.ack;
      for (uint32_t n : chunk_bytes) {
        cursor -= n;  // rewind to the batch-start cumulative ACK (mod 2^32)
      }
      for (uint32_t n : chunk_bytes) {
        cursor += n;
        moppkt::TcpSegmentSpec step = ack;
        step.ack = cursor;
        EmitToApp(client, step, &client->home->lane, client->home);
      }
    } else {
      EmitToApp(client, ack, &client->home->lane, client->home);
    }
    // Half-close deferred until the buffer flushed.
    if (client->sm.state() == RelayTcpState::kCloseWait ||
        client->sm.state() == RelayTcpState::kLastAck) {
      client->channel->Close();
    }
  });
}

void MopEyeEngine::HandleSocketReadable(const std::shared_ptr<TcpClient>& client) {
  if (!client->channel || client->removed) {
    return;
  }
  WorkerLane* home = client->home;
  // §2.3 "Socket Read": pull from the (64 KiB) read buffer and construct data
  // packets for the internal connection. The read lands in the lane-wide
  // scratch; only the bytes actually read are carried across the lane hop.
  home->socket_read_scratch.resize(config_.socket_buffer);
  size_t n = client->channel->Read(home->socket_read_scratch);
  if (n == 0) {
    return;
  }
  std::vector<uint8_t> buf(home->socket_read_scratch.begin(),
                           home->socket_read_scratch.begin() + static_cast<long>(n));
  home->counters.bytes_server_to_app += n;
  moputil::SimDuration cost = config_.costs.socket_op->Sample(home->rng);
  if (config_.content_inspection) {
    // Inspect each MSS-sized chunk of the server's data.
    for (size_t off = 0; off < n; off += config_.mss) {
      cost += config_.content_inspection->Sample(home->rng);
    }
  }
  if (telemetry_) {
    telemetry_->stage_socket_read->Observe(home->index, moputil::ToMillis(cost));
  }
  home->lane.Submit(0, cost, [this, client, buf = std::move(buf)]() mutable {
    if (client->removed) {
      return;
    }
    auto specs = client->sm.MakeData(buf);
    for (const auto& spec : specs) {
      EmitToApp(client, spec, &client->home->lane, client->home);
    }
    // More may have arrived while we processed; keep draining.
    if (client->channel && client->channel->available() > 0) {
      HandleSocketReadable(client);
    }
  });
}

void MopEyeEngine::EmitToApp(const std::shared_ptr<TcpClient>& client,
                             const moppkt::TcpSegmentSpec& spec,
                             mopsim::ActorLane* producer, WorkerLane* gather) {
  moppkt::PacketBuf datagram =
      client->home->pool->AcquireSized(20 + moppkt::TcpSegmentBytes(spec));
  size_t n;
  if (moppkt::TcpPacketTemplate::Covers(spec)) {
    // Steady state (data/ACK/FIN/RST): stamp the per-flow template — header
    // image memcpy + incremental checksums, no full rebuild.
    n = client->tmpl.EmitSpec(spec, client->ip_id++, datagram.writable());
  } else {
    // SYN/ACK carries options; built in place once per connection.
    n = moppkt::BuildTcpDatagramInto(spec, client->flow.remote.ip, client->flow.local.ip,
                                     client->ip_id++, /*ttl=*/64, datagram.writable());
  }
  datagram.set_size(n);
  // The spec classifies the packet (pure ACK or not) before serialization,
  // so the gather path's coalescing rule never re-parses the bytes.
  EmitRawToApp(std::move(datagram), producer, gather, MetaForSpec(client->flow, spec));
}

void MopEyeEngine::EmitRawToApp(moppkt::PacketBuf datagram, mopsim::ActorLane* producer,
                                WorkerLane* gather, const GatherMeta& meta) {
  if (gather != nullptr && config_.lane_tun_write) {
    GatherLaneWrite(*gather, std::move(datagram), meta);
    return;
  }
  moputil::SimDuration overhead = writer_->SubmitPacket(std::move(datagram));
  if (producer != nullptr && overhead > 0) {
    producer->Submit(0, overhead, [] {});
  }
}

void MopEyeEngine::GatherLaneWrite(WorkerLane& lane, moppkt::PacketBuf datagram,
                                   const GatherMeta& meta) {
  if (config_.ack_coalescing && meta.pure_ack && !lane.write_gather.empty() &&
      AckSupersedes(lane.write_gather_meta.back(), meta)) {
    // Consecutive same-flow pure ACKs: the cumulative ACK makes the trailing
    // one redundant — replace it in place. The superseded buffer returns to
    // its pool here; the flush already pending covers the replacement.
    lane.write_gather.back() = std::move(datagram);
    lane.write_gather_meta.back() = meta;
    ++lane.counters.acks_coalesced;
    return;
  }
  lane.write_gather.push_back(std::move(datagram));
  lane.write_gather_meta.push_back(meta);
  if (lane.write_flush_pending) {
    return;
  }
  // Behind the current task chain, so everything the task emits — a whole
  // MakeData batch, say — leaves in one gathered write.
  lane.write_flush_pending = true;
  lane.lane.Submit(0, 0, [this, l = &lane] { FlushLaneWrites(*l); });
}

void MopEyeEngine::FlushLaneWrites(WorkerLane& lane) {
  if (!running_ || lane.write_gather.empty()) {
    lane.write_flush_pending = false;
    return;
  }
  mopcc::LaneScope scope(lane.index);
  lane.affinity.Check();
  std::vector<moppkt::PacketBuf> burst;
  burst.swap(lane.write_gather);
  lane.write_gather_meta.clear();
  const CostModels& costs = config_.costs;
  // One gathered write() on this lane's own tun queue fd: syscall +
  // per-iovec marginal cost, plus the stochastic within-queue stall — but
  // only when another lane shares the queue. An exclusively-owned queue
  // (lanes <= tun_queues) never draws from the contention mixture; the
  // single-queue paper model always does, draw-for-draw as before.
  moputil::SimDuration cost = costs.tun_write_syscall->Sample(lane.rng);
  if (!lane.queue_exclusive) {
    cost += costs.tun_write_contention->Sample(lane.rng);
  }
  for (size_t i = 1; i < burst.size(); ++i) {
    cost += costs.tun_write_batch_extra->Sample(lane.rng);
  }
  ++lane.counters.lane_write_bursts;
  lane.counters.lane_write_packets += burst.size();
  if (telemetry_) {
    telemetry_->stage_tun_write->Observe(lane.index, moputil::ToMillis(cost));
    if (!telemetry_->queue_flush.empty()) {
      telemetry_->queue_flush[lane.queue]->Observe(lane.index, moputil::ToMillis(cost));
    }
  }
  mopdroid::TunDevice* tun = vpn_ ? vpn_->tun() : nullptr;
  if (tun != nullptr && lane.queue_exclusive) {
    // Debug-only: stamp this lane as the queue's sole writer; a flush to a
    // queue the lane does not own aborts instead of silently contending.
    tun->CheckQueueWriteAffinity(lane.queue);
  }
  lane.lane.Submit(0, cost, [this, l = &lane, tun, burst = std::move(burst)]() mutable {
    if (tun != nullptr && !tun->closed()) {
      for (auto& packet : burst) {
        tun->WriteIncoming(l->queue, std::move(packet));
      }
    }
    if (!l->write_gather.empty()) {
      FlushLaneWrites(*l);
    } else {
      l->write_flush_pending = false;
    }
  });
}

void MopEyeEngine::RemoveClient(const std::shared_ptr<TcpClient>& client) {
  if (client->removed) {
    return;
  }
  client->removed = true;
  WorkerLane* home = client->home;
  if (client->kernel_handle != 0) {
    device_->conn_table().Unregister(client->kernel_handle);
    client->kernel_handle = 0;
  }
  if (client->connect_lane) {
    retired_worker_busy_ += client->connect_lane->busy_time();
    ++retired_worker_count_;
  }
  if (client->channel) {
    home->by_channel.erase(client->channel.get());
    client->channel->Deregister();
    if (client->channel->state() != mopnet::ChannelState::kClosed &&
        client->channel->state() != mopnet::ChannelState::kFailed) {
      client->channel->Close();
    }
  }
  bool tracked = home->clients.erase(client->flow) > 0;
  if (!tracked && client->migrating) {
    // Mid-handoff: CompleteHandoff already pulled the client out of the
    // victim's table, but it is still live until now. InstallStolenFlow sees
    // `removed` and skips the re-insert.
    tracked = true;
  }
  if (tracked && clients_live_ > 0) {
    // Guarded: Stop() clears the lane maps directly and zeroes the count, so
    // a straggling closure removing a Stop()-cleared client must not
    // underflow it.
    --clients_live_;
  }
}

// ---------------- Elephant-flow work stealing ----------------

void MopEyeEngine::MaybePublishSteal(WorkerLane& lane) {
  const auto& items = lane.read_queue.items;
  if (items.size() < static_cast<size_t>(config_.steal_queue_threshold)) {
    return;
  }
  if (steal_board_->pending(lane.index)) {
    return;  // an earlier offer is still unjudged
  }
  // Hottest TCP flow among the queued packets. Flows already mid-arrival
  // here are excluded: this lane does not own them yet, so it cannot offer
  // them onward. The scan only runs past the overload threshold, so the
  // steady state never pays for the map.
  std::unordered_map<moppkt::FlowKey, size_t, moppkt::FlowKeyHash> counts;
  const moppkt::FlowKey* best = nullptr;
  size_t best_count = 0;
  for (const ReadQueue::Item& item : items) {
    if (item.kind != ReadQueue::Kind::kPacket || !item.flow_valid ||
        item.flow.proto != moppkt::IpProto::kTcp) {
      continue;
    }
    if (!lane.arriving.empty() && lane.arriving.count(item.flow) != 0) {
      continue;
    }
    size_t c = ++counts[item.flow];
    if (c > best_count) {
      best_count = c;
      best = &item.flow;
    }
  }
  if (best == nullptr) {
    return;
  }
  steal_board_->Publish(lane.index, *best, items.size());
}

void MopEyeEngine::CompleteHandoff(WorkerLane& victim, const moppkt::FlowKey& flow,
                                   size_t thief_index) {
  if (!running_) {
    return;
  }
  mopcc::LaneScope lane_scope(victim.index);
  victim.affinity.Check();
  ++victim.counters.steal_handoffs;
  WorkerLane& thief = *lanes_[thief_index];
  std::shared_ptr<TcpClient> client;
  auto it = victim.clients.find(flow);
  if (it != victim.clients.end()) {
    client = it->second;
    victim.clients.erase(it);
    client->migrating = true;
    client->migrate_target = &thief;
  }
  // Install on the thief even when the client died in the window: the thief
  // must clear its arriving marker and drain the parked packets either way.
  size_t victim_index = victim.index;
  thief.lane.Submit(0, config_.costs.enqueue->Sample(victim.rng),
                    [this, t = &thief, victim_index, flow, client = std::move(client)] {
                      InstallStolenFlow(*t, victim_index, flow, client);
                    });
}

void MopEyeEngine::InstallStolenFlow(WorkerLane& thief, size_t victim_index,
                                     const moppkt::FlowKey& flow,
                                     std::shared_ptr<TcpClient> client) {
  if (!running_) {
    return;
  }
  mopcc::LaneScope lane_scope(thief.index);
  thief.affinity.Check();
  if (client && !client->removed) {
    client->home = &thief;
    client->migrating = false;
    client->migrate_target = nullptr;
    thief.clients[flow] = client;
    thief.counters.clients_high_water =
        std::max(thief.counters.clients_high_water, thief.clients.size());
    if (telemetry_) {
      telemetry_->lane_clients_high_water->SetMax(thief.index, thief.clients.size());
    }
    if (client->channel) {
      thief.by_channel[client->channel.get()] = client;
      // Re-point the channel at this lane's waiting point; its pending
      // events move with it, so none are lost across the re-homing.
      client->channel->MigrateTo(&thief.selector);
      // The victim's stale by_channel entry goes away on the victim's own
      // context. Every straggler event task was submitted there before this
      // cleanup (tasks are atomic; once the channel migrated, the victim's
      // selector can produce no more), so the FIFO forwards them all first.
      WorkerLane* victim = lanes_[victim_index].get();
      victim->lane.Submit(0, 0, [victim, client] {
        victim->by_channel.erase(client->channel.get());
      });
    }
  } else if (client) {
    client->migrating = false;
    client->migrate_target = nullptr;
  }
  // Drain the packets parked behind the kHandoffIn token, in arrival order.
  // Their parse cost was already paid when each was popped and parked.
  thief.arriving.erase(flow);
  auto parked_it = thief.parked.find(flow);
  if (parked_it != thief.parked.end()) {
    std::deque<moppkt::PacketBuf> parked = std::move(parked_it->second);
    thief.parked.erase(parked_it);
    for (moppkt::PacketBuf& raw : parked) {
      ProcessTunPacket(thief, std::move(raw));
    }
  }
  if (reader_) {
    reader_->NoteHandoffComplete(flow);
  }
}

// ---------------- UDP / DNS relay ----------------

void MopEyeEngine::HandleDnsQuery(WorkerLane& lane, const moppkt::ParsedPacket& pkt) {
  ++lane.counters.dns_queries;
  moppkt::FlowKey flow = pkt.flow();
  // View-based peek: the measurement only needs the first question's name,
  // so the relay reads it straight out of the pooled packet instead of
  // heap-building a full DnsMessage per query.
  moppkt::DnsQueryView query;
  std::string domain;
  if (moppkt::PeekDnsQuery(pkt.udp->payload, &query).ok() && query.qdcount > 0) {
    domain.assign(query.name_view());
  }

  // §2.4: the whole DNS processing runs in a temporary thread so parsing and
  // socket setup never block the owning lane.
  auto udp = std::make_shared<UdpClient>();
  udp->flow = flow;
  udp->home = &lane;
  udp->is_dns = true;
  udp->query_domain = domain;
  udp->lane = std::make_unique<mopsim::ActorLane>(loop_, "dns-worker");
  lane.udp_clients[flow] = udp;

  std::vector<uint8_t> payload(pkt.udp->payload.begin(), pkt.udp->payload.end());
  moputil::SimDuration setup = config_.costs.thread_spawn->Sample(lane.rng) +
                               config_.costs.dns_process->Sample(lane.rng);
  if (telemetry_) {
    telemetry_->stage_dns->Observe(lane.index, moputil::ToMillis(setup));
  }
  udp->lane->Submit(setup, 0, [this, udp, payload = std::move(payload)]() mutable {
    udp->socket = mopnet::UdpSocket::Create(&device_->net());
    udp->socket->set_owner_uid(kMopEyeUid);
    if (EffectiveProtectMode() == Config::ProtectMode::kPerSocket) {
      udp->lane->Submit(0, vpn_->protect(*udp->socket), [] {});
    }
    moppkt::SocketAddr resolver = udp->flow.remote;
    std::weak_ptr<UdpClient> weak = udp;
    udp->socket->on_datagram = [this, weak](const moppkt::SocketAddr& from,
                                            std::vector<uint8_t> response) {
      auto u = weak.lock();
      if (!u) {
        return;
      }
      // Blocking-mode receive: timestamp on the DNS thread's wakeup (§2.4).
      u->lane->Submit(config_.costs.thread_wake->Sample(u->home->rng), 0,
                      [this, u, from, response = std::move(response)](
                          moputil::SimTime start, moputil::SimTime) mutable {
                        ++u->home->counters.dns_responses;
                        Measurement m;
                        m.time = start;
                        m.kind = MeasureKind::kDns;
                        m.rtt = start - u->query_t0;
                        m.uid = -1;  // DNS is system-wide; no app mapping
                        m.app = "(dns)";
                        m.domain = u->query_domain;
                        m.server = from;
                        m.net_type = device_->net().profile().type;
                        m.isp = device_->net().profile().isp;
                        m.country = device_->net().profile().country;
                        m.device_id = device_->model();
                        StampTrace(&m, *u->home);
                        u->home->store.Add(std::move(m));
                        // Relay the answer back through the tunnel.
                        moppkt::PacketBuf datagram =
                            u->home->pool->AcquireSized(28 + response.size());
                        datagram.set_size(moppkt::BuildUdpDatagramInto(
                            u->flow.remote.port, u->flow.local.port, response,
                            u->flow.remote.ip, u->flow.local.ip, u->ip_id++,
                            datagram.writable()));
                        EmitRawToApp(std::move(datagram), u->lane.get());
                        // Temporary DNS client retires.
                        retired_worker_busy_ += u->lane->busy_time();
                        ++retired_worker_count_;
                        u->home->udp_clients.erase(u->flow);
                      });
    };
    // Timestamp right before the send() socket call (§2.4).
    udp->query_t0 = loop_->Now();
    udp->socket->SendTo(resolver, std::move(payload));
  });
}

void MopEyeEngine::HandleUdp(WorkerLane& lane, const moppkt::ParsedPacket& pkt) {
  moppkt::FlowKey flow = pkt.flow();
  auto it = lane.udp_clients.find(flow);
  std::shared_ptr<UdpClient> udp;
  if (it != lane.udp_clients.end()) {
    udp = it->second;
  } else {
    udp = std::make_shared<UdpClient>();
    udp->flow = flow;
    udp->home = &lane;
    udp->socket = mopnet::UdpSocket::Create(&device_->net());
    udp->socket->set_owner_uid(kMopEyeUid);
    if (EffectiveProtectMode() == Config::ProtectMode::kPerSocket) {
      vpn_->protect(*udp->socket);
    }
    std::weak_ptr<UdpClient> weak = udp;
    udp->socket->on_datagram = [this, weak](const moppkt::SocketAddr&,
                                            std::vector<uint8_t> response) {
      auto u = weak.lock();
      if (!u) {
        return;
      }
      moppkt::PacketBuf datagram = u->home->pool->AcquireSized(28 + response.size());
      datagram.set_size(moppkt::BuildUdpDatagramInto(
          u->flow.remote.port, u->flow.local.port, response, u->flow.remote.ip,
          u->flow.local.ip, u->ip_id++, datagram.writable()));
      EmitRawToApp(std::move(datagram), &u->home->lane, u->home);
      u->last_activity = loop_->Now();
    };
    lane.udp_clients[flow] = udp;
    // Idle GC for plain UDP associations.
    WorkerLane* l = &lane;
    std::weak_ptr<UdpClient> gc_weak = udp;
    std::function<void()> gc = [this, l, gc_weak, flow]() {
      auto u = gc_weak.lock();
      if (!u) {
        return;
      }
      if (loop_->Now() - u->last_activity >= kUdpIdleTimeout) {
        l->udp_clients.erase(flow);
        return;
      }
      loop_->Schedule(kUdpIdleTimeout, [this, l, gc_weak, flow] {
        auto u2 = gc_weak.lock();
        if (u2 && loop_->Now() - u2->last_activity >= kUdpIdleTimeout) {
          l->udp_clients.erase(flow);
        }
      });
    };
    loop_->Schedule(kUdpIdleTimeout, gc);
  }
  udp->last_activity = loop_->Now();
  std::vector<uint8_t> payload(pkt.udp->payload.begin(), pkt.udp->payload.end());
  udp->socket->SendTo(flow.remote, std::move(payload));
}

// ---------------- Telemetry accessors ----------------

moptel::Registry* MopEyeEngine::telemetry_registry() const {
  return telemetry_ ? &telemetry_->registry : nullptr;
}

moptel::FlightRecorder* MopEyeEngine::flight_recorder() const {
  return telemetry_ ? &telemetry_->recorder : nullptr;
}

}  // namespace mopeye
